#!/usr/bin/env python
"""Perf-regression gate against ``BENCH_BASELINE.json`` (``make bench-gate``).

Re-measures every hot path the baseline records — the three data-structure
micros and the E2-scale end-to-end run, at the exact workload sizes the
baseline was recorded with — and fails (exit 1) when any path has slowed
down by more than ``--threshold`` (default 2.5x) relative to the baseline.

Absolute wall-clock numbers are not comparable across machines (the baseline
was recorded on a developer box; CI runners are slower and noisier), so the
gate compares **speedup ratios** instead: each path is timed A/B against the
seed reference implementation shipped in ``benchmarks/reference_impls.py``,
in the same process on the same machine, and the measured speedup is
compared with the speedup the baseline recorded.  A hot path that regressed
2.5x shows a 2.5x smaller speedup on any hardware; a slow runner slows both
legs equally and cancels out.

The threshold is deliberately loose: CI timing jitters 2-3x on sub-second
runs, but the pathological regressions this gate exists for (an accidentally
quadratic loop, a dropped index) overshoot it by an order of magnitude.  The
end-to-end leg additionally cross-checks the run's deterministic observables
(commits, grants, simulated end time) against the baseline; drift there
means the comparison is meaningless and the baseline needs a refresh
(``make bench-baseline``), which is reported as its own failure.

Usage::

    PYTHONPATH=src python tools/check_bench.py [--threshold 2.5]
        [--baseline BENCH_BASELINE.json] [--json OUT.json]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT))

from benchmarks.baseline import (  # noqa: E402  (sys.path set up above)
    _event_churn_script,
    _queue_churn_script,
    e2_scale_configs,
    make_synthetic_log,
    run_e2_scale,
    seed_structures,
    timed,
)
from benchmarks.reference_impls import (  # noqa: E402
    ReferenceDataQueue,
    ReferenceEventQueue,
    reference_check_serializable,
)
from repro.core.data_queue import DataQueue  # noqa: E402
from repro.core.serializability import check_serializable  # noqa: E402
from repro.sim.events import EventQueue  # noqa: E402

DEFAULT_BASELINE = ROOT / "BENCH_BASELINE.json"

#: End-to-end observables that must match the baseline for the comparison to
#: be meaningful (deterministic given the fixed seeds).
E2E_OBSERVABLES = ("events_processed", "grants", "committed", "deadlock_aborts", "end_time")


def measure_oracle(baseline: Dict[str, object], repeats: int) -> Dict[str, float]:
    entries = int(baseline["entries"])
    log = make_synthetic_log(
        num_entries=entries,
        num_transactions=max(entries // 66, 10),
        num_copies=16,
        read_fraction=0.6,
        seed=97,
    )
    return {
        # The reference oracle is O(n^2); one repeat keeps the gate quick,
        # exactly as the baseline recorder does.
        "reference_s": timed(lambda: reference_check_serializable(log), repeats=1),
        "current_s": timed(lambda: check_serializable(log), repeats=repeats),
    }


def measure_data_queue(baseline: Dict[str, object], repeats: int) -> Dict[str, float]:
    steps = int(baseline["steps"])
    return {
        "reference_s": timed(lambda: _queue_churn_script(ReferenceDataQueue, steps), repeats),
        "current_s": timed(lambda: _queue_churn_script(DataQueue, steps), repeats),
    }


def measure_event_queue(baseline: Dict[str, object], repeats: int) -> Dict[str, float]:
    events = int(baseline["events"])
    return {
        "reference_s": timed(lambda: _event_churn_script(ReferenceEventQueue, events), repeats),
        "current_s": timed(lambda: _event_churn_script(EventQueue, events), repeats),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=pathlib.Path, default=DEFAULT_BASELINE)
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.5,
        help="fail when a hot path is this many times slower, relative to the "
        "reference implementation, than the baseline recorded (default: 2.5)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of-N timing repeats for the micros"
    )
    parser.add_argument("--json", type=pathlib.Path, default=None, help="write results here")
    args = parser.parse_args(argv)

    if not args.baseline.exists():
        print(f"check-bench: baseline {args.baseline} not found", file=sys.stderr)
        return 2
    baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
    if baseline.get("quick"):
        print(
            "check-bench: refusing to gate against a --quick baseline "
            "(regenerate with `make bench-baseline`)",
            file=sys.stderr,
        )
        return 2

    micro = baseline["micro"]
    checks: List[Dict[str, object]] = []

    def record(name: str, baseline_speedup: float, reference_s: float, current_s: float) -> None:
        speedup = reference_s / current_s if current_s > 0 else float("inf")
        # slowdown > 1 means the current code lost ground vs the recorded ratio.
        slowdown = baseline_speedup / speedup if speedup > 0 else float("inf")
        status = "ok" if slowdown <= args.threshold else "SLOW"
        checks.append(
            {
                "hot_path": name,
                "baseline_speedup": round(baseline_speedup, 2),
                "reference_s": round(reference_s, 4),
                "current_s": round(current_s, 4),
                "current_speedup": round(speedup, 2),
                "relative_slowdown": round(slowdown, 2),
                "status": status,
            }
        )
        print(
            f"  {name}: {speedup:.2f}x vs reference (baseline {baseline_speedup:.2f}x, "
            f"relative slowdown {slowdown:.2f}x, limit {args.threshold}x) {status}"
        )

    print(
        f"check-bench: gating against {args.baseline.name} "
        "(speedup vs in-tree reference implementations, machine-independent)"
    )
    timings = measure_oracle(micro["serializability_oracle"], args.repeats)
    record(
        "serializability_oracle",
        float(micro["serializability_oracle"]["speedup"]),
        timings["reference_s"],
        timings["current_s"],
    )
    timings = measure_data_queue(micro["data_queue_churn"], args.repeats)
    record(
        "data_queue_churn",
        float(micro["data_queue_churn"]["speedup"]),
        timings["reference_s"],
        timings["current_s"],
    )
    timings = measure_event_queue(micro["event_list_churn"], args.repeats)
    record(
        "event_list_churn",
        float(micro["event_list_churn"]["speedup"]),
        timings["reference_s"],
        timings["current_s"],
    )

    e2e_baseline = baseline["end_to_end"]["e2_scale_mixed_run"]
    configs = e2_scale_configs(int(e2e_baseline["num_transactions"]))
    with seed_structures():
        reference = run_e2_scale(configs["system"], configs["workload"])
    current = run_e2_scale(configs["system"], configs["workload"])
    record(
        "e2_scale_mixed_run",
        float(e2e_baseline["wall_speedup"]),
        reference["wall_s"],
        current["wall_s"],
    )

    drift = [
        f"{key}: baseline {e2e_baseline['after'][key]!r} != current {current[key]!r}"
        for key in E2E_OBSERVABLES
        if e2e_baseline["after"][key] != current[key]
    ]

    if args.json is not None:
        args.json.write_text(
            json.dumps({"threshold": args.threshold, "checks": checks, "drift": drift}, indent=2)
            + "\n",
            encoding="utf-8",
        )

    failed = [check["hot_path"] for check in checks if check["status"] != "ok"]
    if drift:
        print(
            "check-bench: FAILED — end-to-end observables drifted from the baseline;\n"
            "  the perf comparison is not meaningful. If the behaviour change is\n"
            "  intentional, refresh the baseline with `make bench-baseline`.",
            file=sys.stderr,
        )
        for line in drift:
            print(f"  - {line}", file=sys.stderr)
        return 1
    if failed:
        print(
            f"check-bench: FAILED — hot path(s) regressed more than {args.threshold}x "
            f"relative to the baseline speedups: {', '.join(failed)}",
            file=sys.stderr,
        )
        return 1
    print("check-bench: all hot paths within the regression budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
