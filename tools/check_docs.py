#!/usr/bin/env python
"""Cross-reference checker for the documentation (``make check-docs``).

Fails (exit 1) when the source tree's documentation references drift:

1. **Markdown files** — every ``*.md`` file name mentioned in ``src/``,
   ``tests/``, ``benchmarks/``, ``tools/``, the ``Makefile``, ``README.md``
   or ``DESIGN.md`` must exist in the repository.
2. **Experiment ids** — every ``E<n>`` id cited in an experiment context
   (a line that also mentions ``experiment``/``DESIGN``, or a
   ``bench_e<n>_*.py`` file name) must be defined in DESIGN.md's index.
   Ranges like ``E1-E9`` / ``E1–E9`` are expanded.  Ids such as the
   paper's *condition* (E1)/(E2) are out of scope and ignored.
3. **CLI experiment choices** — the ids accepted by
   ``python -m repro.cli sweep --experiment`` must match DESIGN.md's index
   exactly (no drift in either direction).
4. **Scenario examples** — every ``repro.cli scenario <name>`` example in
   the Markdown docs must name a registered scenario.
5. **Module references** — every dotted ``repro.*`` path mentioned in a
   narrative document (``README.md``, ``DESIGN.md``, ``docs/architecture.md``,
   ``docs/determinism.md``) must resolve to a module under ``src/`` (a
   trailing attribute such as ``repro.store.task_key`` is allowed, but the
   module part must exist).
6. **Docstring coverage** — every public module, class, function and method
   in ``src/repro/`` must carry a docstring; coverage below
   ``DOCSTRING_COVERAGE_THRESHOLD`` fails, and each undocumented item is
   listed individually.

Run from anywhere; the repository root is derived from this file.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path
from typing import Iterable, List, Set, Tuple

ROOT = Path(__file__).resolve().parent.parent

#: Directories whose Python files are scanned for references.
SOURCE_DIRS = ("src", "tests", "benchmarks", "tools")
#: Top-level documentation that is scanned (and must itself exist).
DOC_FILES = (
    "README.md",
    "DESIGN.md",
    "ROADMAP.md",
    "Makefile",
    "docs/architecture.md",
    "docs/determinism.md",
)
#: Narrative documents whose dotted ``repro.*`` references and scenario
#: examples must resolve (the hand-written prose, not the generated API).
NARRATIVE_DOCS = ("README.md", "DESIGN.md", "docs/architecture.md", "docs/determinism.md")

MD_REFERENCE = re.compile(r"\b([A-Za-z0-9_.-]+\.md)\b")
EXPERIMENT_RANGE = re.compile(r"\bE(\d+)\s*[-–]\s*E(\d+)\b")
EXPERIMENT_ID = re.compile(r"\bE(\d+)\b")
EXPERIMENT_CONTEXT = re.compile(r"experiment|DESIGN", re.IGNORECASE)
DESIGN_INDEX_ROW = re.compile(r"^\|\s*E(\d+)\s*\|")
DESIGN_HEADING = re.compile(r"^###\s+E(\d+)\b")
BENCH_FILE = re.compile(r"^bench_e(\d+)_.*\.py$")
SCENARIO_EXAMPLE = re.compile(r"repro\.cli\s+scenario\s+([a-z0-9][a-z0-9-]*)")
CLI_EXPERIMENT_IDS = re.compile(r"EXPERIMENT_IDS\s*=\s*\(([^)]*)\)")
MODULE_REFERENCE = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")

#: Markdown names that are allowed to be referenced without existing here
#: (none at present; extend when citing external documents).
EXTERNAL_MD: Set[str] = set()


def iter_scanned_files() -> Iterable[Path]:
    for name in DOC_FILES:
        path = ROOT / name
        if path.exists():
            yield path
    for directory in SOURCE_DIRS:
        base = ROOT / directory
        if base.is_dir():
            yield from sorted(base.rglob("*.py"))


def defined_experiment_ids() -> Set[int]:
    """Ids DESIGN.md defines, via its index table rows and ``### E<n>`` headings."""
    design = ROOT / "DESIGN.md"
    ids: Set[int] = set()
    if not design.exists():
        return ids
    for line in design.read_text(encoding="utf-8").splitlines():
        for pattern in (DESIGN_INDEX_ROW, DESIGN_HEADING):
            match = pattern.match(line.strip() if pattern is DESIGN_INDEX_ROW else line)
            if match:
                ids.add(int(match.group(1)))
    return ids


def cited_experiment_ids(path: Path) -> Iterable[Tuple[int, str]]:
    """(id, line) pairs for experiment-context citations in ``path``."""
    for line in path.read_text(encoding="utf-8").splitlines():
        if not EXPERIMENT_CONTEXT.search(line):
            continue
        covered: Set[int] = set()
        for match in EXPERIMENT_RANGE.finditer(line):
            low, high = int(match.group(1)), int(match.group(2))
            for identifier in range(low, high + 1):
                covered.add(identifier)
                yield identifier, line.strip()
        for match in EXPERIMENT_ID.finditer(line):
            identifier = int(match.group(1))
            if identifier not in covered:
                yield identifier, line.strip()


def check_markdown_references(errors: List[str]) -> None:
    known_md = {path.name for path in ROOT.rglob("*.md")}
    for path in iter_scanned_files():
        for line_number, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            for match in MD_REFERENCE.finditer(line):
                name = match.group(1)
                if name in EXTERNAL_MD:
                    continue
                if name not in known_md:
                    errors.append(
                        f"{path.relative_to(ROOT)}:{line_number}: reference to "
                        f"missing document {name!r}"
                    )


def check_experiment_ids(errors: List[str]) -> None:
    defined = defined_experiment_ids()
    if not defined:
        errors.append("DESIGN.md: no experiment ids defined (index table missing?)")
        return
    for path in iter_scanned_files():
        if path.suffix == ".py" and path.name == "check_docs.py":
            continue
        for identifier, line in cited_experiment_ids(path):
            if identifier not in defined:
                errors.append(
                    f"{path.relative_to(ROOT)}: cites experiment E{identifier} "
                    f"not defined in DESIGN.md ({line[:80]})"
                )
    benchmarks = ROOT / "benchmarks"
    if benchmarks.is_dir():
        for path in sorted(benchmarks.iterdir()):
            match = BENCH_FILE.match(path.name)
            if match and int(match.group(1)) not in defined:
                errors.append(
                    f"benchmarks/{path.name}: experiment id not defined in DESIGN.md"
                )


def check_cli_choices(errors: List[str]) -> None:
    cli = ROOT / "src" / "repro" / "cli.py"
    if not cli.exists():
        errors.append("src/repro/cli.py: missing")
        return
    match = CLI_EXPERIMENT_IDS.search(cli.read_text(encoding="utf-8"))
    if not match:
        errors.append("src/repro/cli.py: EXPERIMENT_IDS tuple not found")
        return
    cli_ids = {
        int(token.strip().strip("'\"").lstrip("e"))
        for token in match.group(1).split(",")
        if token.strip()
    }
    defined = defined_experiment_ids()
    for missing in sorted(defined - cli_ids):
        errors.append(f"src/repro/cli.py: DESIGN.md defines E{missing} but the CLI lacks it")
    for extra in sorted(cli_ids - defined):
        errors.append(f"src/repro/cli.py: CLI offers e{extra} but DESIGN.md does not define it")


def check_scenario_examples(errors: List[str]) -> None:
    sys.path.insert(0, str(ROOT / "src"))
    try:
        from repro.workload.scenarios import scenario_names
    except Exception as error:  # pragma: no cover - import environment problem
        errors.append(f"could not import the scenario registry: {error}")
        return
    finally:
        sys.path.pop(0)
    known = set(scenario_names())
    for name in NARRATIVE_DOCS:
        path = ROOT / name
        if not path.exists():
            continue
        for line_number, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            # The capture group cannot match flags like --list, so every hit
            # is a scenario name that must resolve.
            for match in SCENARIO_EXAMPLE.finditer(line):
                if match.group(1) not in known:
                    errors.append(
                        f"{name}:{line_number}: scenario example "
                        f"{match.group(1)!r} is not registered"
                    )


def _module_exists(parts: List[str]) -> bool:
    """True when ``src/<parts>`` is a module file or a package directory."""
    base = ROOT / "src"
    return (base.joinpath(*parts).with_suffix(".py")).exists() or (
        base.joinpath(*parts) / "__init__.py"
    ).exists()


def check_module_references(errors: List[str]) -> None:
    """Dotted ``repro.*`` references in the docs must resolve under ``src/``.

    A reference may carry one trailing attribute (``repro.store.task_key``);
    everything before it must be an importable module or package.
    """
    for name in NARRATIVE_DOCS:
        path = ROOT / name
        if not path.exists():
            continue
        for line_number, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            for match in MODULE_REFERENCE.finditer(line):
                parts = match.group(0).split(".")
                if _module_exists(parts) or _module_exists(parts[:-1]):
                    continue
                errors.append(
                    f"{name}:{line_number}: module reference {match.group(0)!r} "
                    "does not resolve under src/"
                )


#: Minimum fraction of public definitions in ``src/repro/`` that must carry a
#: docstring.  Held at 1.0: every public module/class/function is documented,
#: and the generated API reference (``make api-docs``) depends on it.
DOCSTRING_COVERAGE_THRESHOLD = 1.0


def iter_public_definitions(tree: ast.Module) -> Iterable[Tuple[str, int, bool]]:
    """``(qualified name, line, documented)`` for each public def/class in ``tree``.

    Public means every path component lacks a leading underscore; nested
    definitions inside functions are out of scope (they are implementation
    detail, not API).
    """

    def visit(node: ast.AST, prefix: str) -> Iterable[Tuple[str, int, bool]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                if child.name.startswith("_"):
                    continue
                qualified = f"{prefix}{child.name}"
                yield qualified, child.lineno, ast.get_docstring(child) is not None
                if isinstance(child, ast.ClassDef):
                    yield from visit(child, qualified + ".")

    yield from visit(tree, "")


def check_docstring_coverage(errors: List[str]) -> None:
    """Docstring-coverage gate over every public definition in ``src/repro``."""
    package = ROOT / "src" / "repro"
    total = 0
    documented = 0
    undocumented: List[str] = []
    for path in sorted(package.rglob("*.py")):
        relative = path.relative_to(ROOT)
        tree = ast.parse(path.read_text(encoding="utf-8"))
        total += 1
        if ast.get_docstring(tree) is not None:
            documented += 1
        else:
            undocumented.append(f"{relative}:1: module docstring missing")
        for name, line, has_doc in iter_public_definitions(tree):
            total += 1
            if has_doc:
                documented += 1
            else:
                undocumented.append(f"{relative}:{line}: {name} is undocumented")
    coverage = documented / total if total else 1.0
    if coverage < DOCSTRING_COVERAGE_THRESHOLD:
        errors.append(
            f"docstring coverage {documented}/{total} ({coverage:.1%}) is below the "
            f"{DOCSTRING_COVERAGE_THRESHOLD:.0%} threshold"
        )
        errors.extend(f"  {item}" for item in undocumented)


def main() -> int:
    errors: List[str] = []
    for required in ("README.md", "DESIGN.md"):
        if not (ROOT / required).exists():
            errors.append(f"{required}: missing")
    check_markdown_references(errors)
    check_experiment_ids(errors)
    check_cli_choices(errors)
    check_scenario_examples(errors)
    check_module_references(errors)
    check_docstring_coverage(errors)
    if errors:
        print("check-docs: FAILED")
        for error in errors:
            print(f"  - {error}")
        return 1
    print("check-docs: all documentation cross-references resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
