PY ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test check-docs bench bench-smoke bench-baseline bench-gate

## tier-1 verification gate
test:
	$(PY) -m pytest -x -q

## documentation cross-reference gate (DESIGN.md / README.md / experiment ids)
check-docs:
	$(PY) tools/check_docs.py

## perf-regression gate: current hot paths vs BENCH_BASELINE.json (>2.5x fails)
bench-gate:
	$(PY) tools/check_bench.py

## hot-path + store micros as plain tests (no timing) — fast sanity check
bench-smoke:
	$(PY) -m pytest benchmarks/bench_micro_hotpaths.py benchmarks/bench_store.py -q --benchmark-disable

## full pytest-benchmark run of the hot-path micros
bench:
	$(PY) -m pytest benchmarks/bench_micro_hotpaths.py -q

## refresh BENCH_BASELINE.json (seed vs optimised A/B; exits non-zero on drift)
bench-baseline:
	$(PY) benchmarks/baseline.py
