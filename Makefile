PY ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test check-docs api-docs check-api-docs bench bench-smoke bench-baseline bench-gate memory-gate

## tier-1 verification gate
test:
	$(PY) -m pytest -x -q

## documentation cross-reference + docstring-coverage gate
check-docs:
	$(PY) tools/check_docs.py

## regenerate the Markdown API reference under docs/api/ from docstrings
api-docs:
	$(PY) tools/gen_api_docs.py

## fail if docs/api/ is stale relative to the source docstrings
check-api-docs:
	$(PY) tools/gen_api_docs.py --check

## perf-regression gate: current hot paths vs BENCH_BASELINE.json (>2.5x fails)
bench-gate:
	$(PY) tools/check_bench.py

## memory-regression gate: streaming-audit peak must stay flat across 10x runs
memory-gate:
	$(PY) -m pytest tests/system/test_streaming_memory.py -q

## hot-path + store micros and the E10 availability experiment as plain
## tests (no timing) — fast sanity check
bench-smoke:
	$(PY) -m pytest benchmarks/bench_micro_hotpaths.py benchmarks/bench_store.py \
		benchmarks/bench_e10_availability.py benchmarks/bench_e11_recovery.py \
		benchmarks/bench_e12_sim_live.py \
		benchmarks/bench_streaming_audit.py benchmarks/bench_parallel_engine.py \
		-q --benchmark-disable

## full pytest-benchmark run of the hot-path micros
bench:
	$(PY) -m pytest benchmarks/bench_micro_hotpaths.py -q

## refresh BENCH_BASELINE.json (seed vs optimised A/B; exits non-zero on drift)
bench-baseline:
	$(PY) benchmarks/baseline.py
