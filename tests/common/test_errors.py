"""Exception hierarchy."""

import pytest

from repro.common.errors import (
    ConfigurationError,
    DeadlockError,
    ProtocolError,
    ReproError,
    SerializationViolationError,
    SimulationError,
    TransactionAbortedError,
    UnknownProtocolError,
)
from repro.common.ids import TransactionId


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [
            ConfigurationError,
            SimulationError,
            ProtocolError,
            UnknownProtocolError,
            TransactionAbortedError,
            DeadlockError,
            SerializationViolationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exception_type):
        assert issubclass(exception_type, ReproError)

    def test_unknown_protocol_is_a_protocol_error(self):
        assert issubclass(UnknownProtocolError, ProtocolError)

    def test_deadlock_is_a_transaction_abort(self):
        assert issubclass(DeadlockError, TransactionAbortedError)


class TestMessages:
    def test_transaction_aborted_carries_reason(self):
        error = TransactionAbortedError(TransactionId(0, 1), "rejected")
        assert error.transaction_id == TransactionId(0, 1)
        assert "rejected" in str(error)

    def test_deadlock_error_carries_cycle(self):
        cycle = (TransactionId(0, 1), TransactionId(1, 2))
        error = DeadlockError(TransactionId(0, 1), cycle)
        assert error.cycle == cycle

    def test_serialization_violation_lists_cycle_members(self):
        cycle = (TransactionId(0, 1), TransactionId(1, 2))
        error = SerializationViolationError(cycle)
        assert "T0.1" in str(error)
        assert "T1.2" in str(error)
