"""Identifier value types."""

from repro.common.ids import CopyId, RequestId, TransactionId


class TestTransactionId:
    def test_ordering_is_lexicographic_on_site_then_seq(self):
        assert TransactionId(0, 5) < TransactionId(1, 1)
        assert TransactionId(1, 1) < TransactionId(1, 2)

    def test_equality_and_hash(self):
        assert TransactionId(2, 3) == TransactionId(2, 3)
        assert hash(TransactionId(2, 3)) == hash(TransactionId(2, 3))
        assert TransactionId(2, 3) != TransactionId(3, 2)

    def test_str_form(self):
        assert str(TransactionId(2, 3)) == "T2.3"

    def test_usable_as_dict_key(self):
        mapping = {TransactionId(0, 1): "a", TransactionId(0, 2): "b"}
        assert mapping[TransactionId(0, 1)] == "a"


class TestCopyId:
    def test_str_form(self):
        assert str(CopyId(7, 2)) == "D7@2"

    def test_ordering_by_item_then_site(self):
        assert CopyId(1, 5) < CopyId(2, 0)
        assert CopyId(2, 0) < CopyId(2, 1)

    def test_equality(self):
        assert CopyId(3, 1) == CopyId(3, 1)
        assert CopyId(3, 1) != CopyId(3, 2)


class TestRequestId:
    def test_str_includes_transaction_index_and_attempt(self):
        rid = RequestId(TransactionId(1, 4), 2, 1)
        assert str(rid) == "T1.4.op2#1"

    def test_attempt_distinguishes_reissued_requests(self):
        first = RequestId(TransactionId(0, 1), 0, 0)
        second = RequestId(TransactionId(0, 1), 0, 1)
        assert first != second

    def test_default_attempt_is_zero(self):
        assert RequestId(TransactionId(0, 1), 3).attempt == 0

    def test_ordering(self):
        assert RequestId(TransactionId(0, 1), 0, 0) < RequestId(TransactionId(0, 1), 1, 0)
