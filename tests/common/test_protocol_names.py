"""Protocol enumeration and name parsing."""

import pytest

from repro.common.errors import UnknownProtocolError
from repro.common.protocol_names import Protocol


class TestProtocolFlags:
    def test_each_protocol_sets_exactly_one_flag(self):
        for protocol in Protocol:
            flags = [
                protocol.is_two_phase_locking,
                protocol.is_timestamp_ordering,
                protocol.is_precedence_agreement,
            ]
            assert sum(flags) == 1

    def test_str_values(self):
        assert str(Protocol.TWO_PHASE_LOCKING) == "2PL"
        assert str(Protocol.TIMESTAMP_ORDERING) == "T/O"
        assert str(Protocol.PRECEDENCE_AGREEMENT) == "PA"


class TestFromName:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("2PL", Protocol.TWO_PHASE_LOCKING),
            ("2pl", Protocol.TWO_PHASE_LOCKING),
            ("T/O", Protocol.TIMESTAMP_ORDERING),
            ("to", Protocol.TIMESTAMP_ORDERING),
            ("t-o", Protocol.TIMESTAMP_ORDERING),
            ("PA", Protocol.PRECEDENCE_AGREEMENT),
            ("pa", Protocol.PRECEDENCE_AGREEMENT),
            ("precedence_agreement", Protocol.PRECEDENCE_AGREEMENT),
        ],
    )
    def test_parses_aliases(self, name, expected):
        assert Protocol.from_name(name) is expected

    def test_passes_through_protocol_instances(self):
        assert Protocol.from_name(Protocol.TIMESTAMP_ORDERING) is Protocol.TIMESTAMP_ORDERING

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownProtocolError):
            Protocol.from_name("optimistic")
