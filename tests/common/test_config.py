"""Configuration validation and helpers."""

import pytest

from repro.common.config import NetworkConfig, ProtocolMix, SystemConfig, WorkloadConfig
from repro.common.errors import ConfigurationError
from repro.common.protocol_names import Protocol


class TestNetworkConfig:
    def test_rejects_negative_delays(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(fixed_delay=-0.1)

    def test_defaults_are_valid(self):
        config = NetworkConfig()
        assert config.fixed_delay >= 0


class TestProtocolMix:
    def test_pure_mix_always_samples_that_protocol(self):
        mix = ProtocolMix.pure(Protocol.PRECEDENCE_AGREEMENT)
        assert mix.sample(0.01) is Protocol.PRECEDENCE_AGREEMENT
        assert mix.sample(0.99) is Protocol.PRECEDENCE_AGREEMENT

    def test_uniform_mix_normalises_to_thirds(self):
        normalized = ProtocolMix.uniform().normalized()
        for weight in normalized.values():
            assert weight == pytest.approx(1.0 / 3.0)

    def test_sample_respects_weights(self):
        mix = ProtocolMix({Protocol.TWO_PHASE_LOCKING: 3.0, Protocol.TIMESTAMP_ORDERING: 1.0})
        assert mix.sample(0.5) is Protocol.TWO_PHASE_LOCKING
        assert mix.sample(0.9) is Protocol.TIMESTAMP_ORDERING

    def test_rejects_non_positive_total(self):
        with pytest.raises(ConfigurationError):
            ProtocolMix({Protocol.TWO_PHASE_LOCKING: 0.0})

    def test_rejects_negative_weight(self):
        with pytest.raises(ConfigurationError):
            ProtocolMix({Protocol.TWO_PHASE_LOCKING: -1.0, Protocol.TIMESTAMP_ORDERING: 2.0})

    def test_pure_accepts_string_names(self):
        assert ProtocolMix.pure("t/o").sample(0.5) is Protocol.TIMESTAMP_ORDERING


class TestSystemConfig:
    def test_defaults_are_valid(self):
        config = SystemConfig()
        assert config.num_sites >= 1

    @pytest.mark.parametrize(
        "overrides",
        [
            {"num_sites": 0},
            {"num_items": 0},
            {"replication_factor": 0},
            {"replication_factor": 10, "num_sites": 4},
            {"io_time": -1.0},
            {"deadlock_detection_period": 0.0},
            {"pa_backoff_interval": 0.0},
            {"restart_delay": -0.5},
        ],
    )
    def test_rejects_invalid_values(self, overrides):
        with pytest.raises(ConfigurationError):
            SystemConfig(**overrides)

    def test_with_overrides_returns_modified_copy(self):
        config = SystemConfig(num_items=10)
        changed = config.with_overrides(num_items=20)
        assert changed.num_items == 20
        assert config.num_items == 10


class TestWorkloadConfig:
    def test_defaults_are_valid(self):
        config = WorkloadConfig()
        assert config.arrival_rate > 0

    @pytest.mark.parametrize(
        "overrides",
        [
            {"arrival_rate": 0.0},
            {"num_transactions": 0},
            {"min_size": 0},
            {"min_size": 5, "max_size": 3},
            {"read_fraction": 1.5},
            {"compute_time": -0.1},
            {"hotspot_fraction": 0.0},
            {"hotspot_probability": 1.5},
        ],
    )
    def test_rejects_invalid_values(self, overrides):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(**overrides)

    def test_mean_size(self):
        config = WorkloadConfig(min_size=2, max_size=6)
        assert config.mean_size == pytest.approx(4.0)

    def test_with_overrides_returns_modified_copy(self):
        config = WorkloadConfig(arrival_rate=5.0)
        changed = config.with_overrides(arrival_rate=10.0)
        assert changed.arrival_rate == 10.0
        assert config.arrival_rate == 5.0
