"""Logical and physical operations and their conflict relation."""

from repro.common.ids import CopyId
from repro.common.operations import (
    LogicalOperation,
    OperationType,
    PhysicalOperation,
    read,
    write,
)


class TestOperationType:
    def test_read_write_flags(self):
        assert OperationType.READ.is_read and not OperationType.READ.is_write
        assert OperationType.WRITE.is_write and not OperationType.WRITE.is_read

    def test_conflicts_require_at_least_one_write(self):
        assert not OperationType.READ.conflicts_with(OperationType.READ)
        assert OperationType.READ.conflicts_with(OperationType.WRITE)
        assert OperationType.WRITE.conflicts_with(OperationType.READ)
        assert OperationType.WRITE.conflicts_with(OperationType.WRITE)

    def test_str(self):
        assert str(OperationType.READ) == "r"
        assert str(OperationType.WRITE) == "w"


class TestLogicalOperation:
    def test_helpers_build_expected_operations(self):
        assert read(3) == LogicalOperation(OperationType.READ, 3)
        assert write(4) == LogicalOperation(OperationType.WRITE, 4)

    def test_conflict_requires_same_item(self):
        assert not read(1).conflicts_with(write(2))
        assert read(1).conflicts_with(write(1))
        assert not read(1).conflicts_with(read(1))

    def test_str(self):
        assert str(write(9)) == "w(D9)"


class TestPhysicalOperation:
    def test_item_and_site_shortcuts(self):
        operation = PhysicalOperation(OperationType.WRITE, CopyId(5, 2))
        assert operation.item == 5
        assert operation.site == 2

    def test_conflict_requires_same_copy(self):
        a = PhysicalOperation(OperationType.WRITE, CopyId(5, 2))
        b = PhysicalOperation(OperationType.READ, CopyId(5, 2))
        c = PhysicalOperation(OperationType.READ, CopyId(5, 3))
        assert a.conflicts_with(b)
        assert not b.conflicts_with(c)
        assert not b.conflicts_with(b)

    def test_str(self):
        operation = PhysicalOperation(OperationType.READ, CopyId(1, 0))
        assert str(operation) == "r(D1@0)"
