"""Transaction specifications and outcomes."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.ids import TransactionId
from repro.common.operations import OperationType
from repro.common.protocol_names import Protocol
from repro.common.transactions import (
    TransactionOutcome,
    TransactionSpec,
    TransactionStatus,
)


def make_spec(**overrides):
    defaults = dict(
        tid=TransactionId(1, 2),
        read_items=(0, 1),
        write_items=(2,),
        compute_time=0.01,
        arrival_time=3.0,
    )
    defaults.update(overrides)
    return TransactionSpec(**defaults)


class TestTransactionSpecValidation:
    def test_requires_at_least_one_item(self):
        with pytest.raises(ConfigurationError):
            make_spec(read_items=(), write_items=())

    def test_rejects_negative_compute_time(self):
        with pytest.raises(ConfigurationError):
            make_spec(compute_time=-1.0)

    def test_rejects_duplicate_reads(self):
        with pytest.raises(ConfigurationError):
            make_spec(read_items=(1, 1))

    def test_rejects_duplicate_writes(self):
        with pytest.raises(ConfigurationError):
            make_spec(write_items=(2, 2))

    def test_read_write_overlap_is_allowed(self):
        spec = make_spec(read_items=(1, 2), write_items=(2,))
        assert spec.size == 2


class TestTransactionSpecProperties:
    def test_origin_site_comes_from_tid(self):
        assert make_spec().origin_site == 1

    def test_size_counts_distinct_items(self):
        assert make_spec(read_items=(0, 1), write_items=(1, 2)).size == 3

    def test_num_reads_and_writes(self):
        spec = make_spec(read_items=(0, 1), write_items=(2, 3, 4))
        assert spec.num_reads == 2
        assert spec.num_writes == 3

    def test_logical_operations_are_reads_then_writes(self):
        spec = make_spec(read_items=(0,), write_items=(2,))
        operations = spec.logical_operations()
        assert [op.op_type for op in operations] == [OperationType.READ, OperationType.WRITE]
        assert [op.item for op in operations] == [0, 2]

    def test_accessed_items_sorted_and_distinct(self):
        spec = make_spec(read_items=(3, 1), write_items=(1, 2))
        assert spec.accessed_items() == (1, 2, 3)

    def test_with_protocol_preserves_everything_else(self):
        spec = make_spec()
        bound = spec.with_protocol(Protocol.PRECEDENCE_AGREEMENT)
        assert bound.protocol is Protocol.PRECEDENCE_AGREEMENT
        assert bound.tid == spec.tid
        assert bound.read_items == spec.read_items
        assert bound.arrival_time == spec.arrival_time

    def test_with_protocol_preserves_logic(self):
        logic = lambda reads: {2: 42}
        spec = make_spec(logic=logic)
        assert spec.with_protocol(Protocol.TWO_PHASE_LOCKING).logic is logic


class TestTransactionStatus:
    def test_terminal_states(self):
        assert TransactionStatus.COMMITTED.is_terminal
        assert TransactionStatus.FINISHED.is_terminal
        assert not TransactionStatus.REQUESTING.is_terminal
        assert not TransactionStatus.ABORTED.is_terminal


class TestTransactionOutcome:
    def test_system_time_is_commit_minus_arrival(self):
        outcome = TransactionOutcome(
            spec=make_spec(),
            protocol=Protocol.TWO_PHASE_LOCKING,
            arrival_time=3.0,
            commit_time=4.5,
        )
        assert outcome.system_time == pytest.approx(1.5)
