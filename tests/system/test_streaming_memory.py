"""Memory-regression gate for the streaming audit pipeline.

The pipeline's headline claim is that resident state tracks the
open-transaction *window*, not the run length.  This gate measures it
directly: a tracemalloc-instrumented run at 10x the transactions of a
reference run must not allocate a meaningfully larger peak.  Any change that
reintroduces per-transaction retention — an observer keeping entries, a
metrics list that stops folding, a log that stops dropping retired entries —
fails the ratio assertion immediately.
"""

import tracemalloc

from repro.core.streaming_harness import drive_streaming_audit

#: Transactions in the reference run; the large run is 10x this.
BASE_TRANSACTIONS = 1_000

#: The 10x run may allocate at most this multiple of the reference peak.
#: Flat in theory; the slack absorbs allocator noise and the O(windows)
#: streaming-metrics buckets, which grow with simulated time but are a few
#: dozen bytes each.
PEAK_RATIO_CEILING = 1.5

#: Absolute ceiling for the 10x run's traced peak.  The measured peak is
#: ~0.2 MiB; a run that has started retaining its ~56k log entries blows
#: through this by an order of magnitude.
PEAK_BYTES_CEILING = 4 * 1024 * 1024


def _traced_peak(num_transactions: int) -> int:
    tracemalloc.start()
    try:
        result = drive_streaming_audit(num_transactions, seed=7)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert result["serializability"].serializable
    assert result["checker_stats"]["live_entries"] == 0
    return peak


def test_peak_memory_is_flat_across_10x_run_growth():
    # Warm-up run: first use pays import-time and allocator warm-up costs
    # that would otherwise be charged to the reference measurement.
    _traced_peak(200)
    small = _traced_peak(BASE_TRANSACTIONS)
    large = _traced_peak(10 * BASE_TRANSACTIONS)
    assert large <= small * PEAK_RATIO_CEILING, (small, large)
    assert large <= PEAK_BYTES_CEILING, large
