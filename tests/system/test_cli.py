"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.command == "run"
        assert args.protocol == "mixed"
        assert args.sites == 4

    def test_sweep_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep"])

    def test_sweep_arguments(self):
        args = build_parser().parse_args(["sweep", "--experiment", "e2", "--sizes", "1", "3"])
        assert args.experiment == "e2"
        assert args.sizes == [1, 3]


class TestRunCommand:
    @pytest.mark.parametrize("protocol", ["2PL", "T/O", "PA", "mixed", "dynamic"])
    def test_run_each_method(self, protocol, capsys):
        exit_code = main(
            [
                "run",
                "--protocol", protocol,
                "--sites", "2",
                "--items", "16",
                "--transactions", "30",
                "--arrival-rate", "20",
                "--seed", "5",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "mean_system_time" in captured.out
        assert "serializable" in captured.out

    def test_run_with_switching_and_no_semi_locks(self, capsys):
        exit_code = main(
            [
                "run",
                "--protocol", "mixed",
                "--sites", "2",
                "--items", "12",
                "--transactions", "30",
                "--switch-after", "2",
                "--no-semi-locks",
                "--seed", "6",
            ]
        )
        assert exit_code == 0
        assert "committed" in capsys.readouterr().out


class TestSweepCommand:
    def test_e1_sweep(self, capsys):
        exit_code = main(
            [
                "sweep",
                "--experiment", "e1",
                "--rates", "10", "30",
                "--sites", "2",
                "--items", "16",
                "--transactions", "25",
                "--seed", "7",
            ]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "2PL" in out and "PA" in out
        assert "mean_system_time" in out

    def test_e3_sweep(self, capsys):
        exit_code = main(
            [
                "sweep",
                "--experiment", "e3",
                "--sites", "2",
                "--items", "16",
                "--transactions", "25",
                "--arrival-rate", "30",
                "--seed", "8",
            ]
        )
        assert exit_code == 0
        assert "protocol" in capsys.readouterr().out

    def test_e6_sweep(self, capsys):
        exit_code = main(
            [
                "sweep",
                "--experiment", "e6",
                "--sites", "2",
                "--items", "16",
                "--transactions", "25",
                "--seed", "9",
            ]
        )
        assert exit_code == 0
        assert "enforcement" in capsys.readouterr().out

    def test_e7_sweep(self, capsys):
        exit_code = main(["sweep", "--experiment", "e7"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "stl_prime_dp" in out and "naive_calls" in out

    def test_e8_sweep(self, capsys):
        exit_code = main(
            [
                "sweep",
                "--experiment", "e8",
                "--sites", "2",
                "--items", "16",
                "--transactions", "25",
                "--seed", "9",
            ]
        )
        assert exit_code == 0
        assert "switching" in capsys.readouterr().out

    def test_e9_sweep(self, capsys):
        exit_code = main(
            [
                "sweep",
                "--experiment", "e9",
                "--scenarios", "mix-flip",
                "--transactions", "40",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "post_drift_mean_system_time" in out
        assert "adaptive" in out and "frozen" in out

    def test_e10_sweep(self, capsys):
        exit_code = main(
            [
                "sweep",
                "--experiment", "e10",
                "--scenarios", "site-blackout",
                "--transactions", "40",
                "--jobs", "2",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "one-phase" in out and "two-phase" in out
        assert "lost_writes" in out and "atomic" in out

    def test_run_accepts_the_commit_flag(self, capsys):
        exit_code = main(
            [
                "run",
                "--commit", "two-phase",
                "--sites", "2",
                "--items", "16",
                "--transactions", "20",
                "--protocol", "2PL",
                "--seed", "5",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "commit_protocol" in out and "two-phase" in out

    def test_sweep_with_jobs_matches_serial_output(self, capsys):
        argv = [
            "sweep",
            "--experiment", "e1",
            "--rates", "10", "30",
            "--sites", "2",
            "--items", "16",
            "--transactions", "25",
            "--seed", "7",
        ]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--jobs", "3"]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out

    def test_sweep_accepts_access_pattern_and_arrival_process(self, capsys):
        exit_code = main(
            [
                "sweep",
                "--experiment", "e1",
                "--rates", "20",
                "--sites", "2",
                "--items", "16",
                "--transactions", "25",
                "--access-pattern", "zipfian",
                "--arrival-process", "bursty",
                "--seed", "4",
            ]
        )
        assert exit_code == 0
        assert "mean_system_time" in capsys.readouterr().out


class TestScenarioCommand:
    def test_list_scenarios(self, capsys):
        assert main(["scenario", "--list"]) == 0
        out = capsys.readouterr().out
        assert "zipf-hotspot" in out
        assert "bursty-arrivals" in out

    def test_missing_name_is_a_usage_error(self, capsys):
        assert main(["scenario"]) == 2
        assert "scenario" in capsys.readouterr().out

    def test_unknown_name_is_a_usage_error(self, capsys):
        assert main(["scenario", "no-such-profile"]) == 2
        assert "known scenarios" in capsys.readouterr().err

    # The acceptance criterion: at least four of the new named scenarios run
    # end-to-end through the CLI and pass the serializability audit.
    @pytest.mark.parametrize(
        "name",
        ["zipf-hotspot", "read-mostly-analytics", "bursty-arrivals", "site-skewed",
         "bimodal-churn", "hotspot-migration", "mix-flip", "load-ramp"],
    )
    def test_named_scenarios_run_serializable(self, name, capsys):
        exit_code = main(
            ["scenario", name, "--transactions", "30", "--replications", "2"]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert name in out
        assert "yes" in out  # the serializable column

    def test_scenario_jobs_output_byte_identical(self, capsys):
        argv = ["scenario", "site-skewed", "--transactions", "30", "--replications", "2"]
        assert main(argv + ["--jobs", "1"]) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial_out

    def test_scenario_engine_output_byte_identical(self, capsys):
        argv = ["scenario", "site-skewed", "--transactions", "30", "--replications", "2"]
        assert main(argv + ["--engine", "serial"]) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--engine", "parallel"]) == 0
        assert capsys.readouterr().out == serial_out

    def test_scenario_engine_default_is_the_scenario_config(self):
        args = build_parser().parse_args(["scenario", "zipf-hotspot"])
        assert args.engine is None

    def test_scenario_engine_rejects_unknown_values(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario", "zipf-hotspot", "--engine", "warp"])

    def test_scenario_windows_file(self, tmp_path, capsys):
        path = tmp_path / "windows.txt"
        argv = [
            "scenario", "mix-flip",
            "--transactions", "40",
            "--replications", "2",
            "--windows", str(path),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        content = path.read_text(encoding="utf-8")
        assert "mix-flip · replication 0" in content
        assert "mix-flip · replication 1" in content
        assert "restart_probability" in content and "share_2PL" in content

    def test_scenario_windows_file_byte_identical_across_jobs(self, tmp_path, capsys):
        serial, parallel = tmp_path / "serial.txt", tmp_path / "parallel.txt"
        base = ["scenario", "load-ramp", "--transactions", "40", "--replications", "2"]
        assert main(base + ["--windows", str(serial)]) == 0
        assert main(base + ["--jobs", "2", "--windows", str(parallel)]) == 0
        capsys.readouterr()
        assert serial.read_bytes() == parallel.read_bytes()


class TestStoreFlags:
    def test_resume_without_store_is_a_usage_error(self, capsys):
        argv = ["sweep", "--experiment", "e3", "--transactions", "10", "--resume"]
        assert main(argv) == 2
        assert "--store" in capsys.readouterr().err

    def test_force_without_store_is_a_usage_error(self, capsys):
        argv = ["sweep", "--experiment", "e3", "--transactions", "10", "--force"]
        assert main(argv) == 2
        assert "--store" in capsys.readouterr().err

    def test_resume_with_missing_store_file_fails_fast(self, tmp_path, capsys):
        argv = [
            "sweep", "--experiment", "e3", "--transactions", "10",
            "--store", str(tmp_path / "absent.jsonl"), "--resume",
        ]
        assert main(argv) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_resume_contradicts_force(self, tmp_path, capsys):
        argv = [
            "sweep", "--experiment", "e3", "--transactions", "10",
            "--store", str(tmp_path / "runs.jsonl"), "--resume", "--force",
        ]
        assert main(argv) == 2
        assert "contradicts" in capsys.readouterr().err

    def test_sweep_store_roundtrip_and_accounting(self, tmp_path, capsys):
        store_path = tmp_path / "runs.jsonl"
        argv = [
            "sweep", "--experiment", "e3", "--transactions", "20",
            "--sites", "2", "--items", "16", "--store", str(store_path),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr()
        assert store_path.exists()
        assert "3 executed" in cold.err
        assert main(argv + ["--resume"]) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out  # byte-identical table
        assert "3 reused" in warm.err
        assert "0 executed" in warm.err

    def test_force_reexecutes_cached_points(self, tmp_path, capsys):
        store_path = tmp_path / "runs.jsonl"
        argv = [
            "sweep", "--experiment", "e3", "--transactions", "20",
            "--sites", "2", "--items", "16", "--store", str(store_path),
        ]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert main(argv + ["--force"]) == 0
        forced = capsys.readouterr()
        assert forced.out == first.out
        assert "3 executed" in forced.err
        assert "3 forced" in forced.err

    def test_scenario_store_roundtrip(self, tmp_path, capsys):
        store_path = tmp_path / "runs.jsonl"
        argv = [
            "scenario", "site-skewed", "--transactions", "30",
            "--replications", "2", "--store", str(store_path),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr()
        assert "2 executed" in cold.err
        assert main(argv + ["--jobs", "2"]) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out
        assert "2 reused" in warm.err


class TestStoreCommand:
    def test_stats_and_table(self, tmp_path, capsys):
        store_path = tmp_path / "runs.jsonl"
        assert main(
            [
                "sweep", "--experiment", "e3", "--transactions", "20",
                "--sites", "2", "--items", "16", "--store", str(store_path),
            ]
        ) == 0
        capsys.readouterr()
        assert main(["store", "stats", str(store_path)]) == 0
        stats_out = capsys.readouterr().out
        assert "entries" in stats_out
        assert "3" in stats_out
        assert main(["store", "table", str(store_path)]) == 0
        table_out = capsys.readouterr().out
        assert "2PL" in table_out
        assert "T/O" in table_out
        assert "PA" in table_out
        assert "committed" in table_out

    def test_missing_store_file_is_an_error(self, tmp_path, capsys):
        assert main(["store", "stats", str(tmp_path / "absent.jsonl")]) == 2
        assert "does not exist" in capsys.readouterr().err
