"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.command == "run"
        assert args.protocol == "mixed"
        assert args.sites == 4

    def test_sweep_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep"])

    def test_sweep_arguments(self):
        args = build_parser().parse_args(["sweep", "--experiment", "e2", "--sizes", "1", "3"])
        assert args.experiment == "e2"
        assert args.sizes == [1, 3]


class TestRunCommand:
    @pytest.mark.parametrize("protocol", ["2PL", "T/O", "PA", "mixed", "dynamic"])
    def test_run_each_method(self, protocol, capsys):
        exit_code = main(
            [
                "run",
                "--protocol", protocol,
                "--sites", "2",
                "--items", "16",
                "--transactions", "30",
                "--arrival-rate", "20",
                "--seed", "5",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "mean_system_time" in captured.out
        assert "serializable" in captured.out

    def test_run_with_switching_and_no_semi_locks(self, capsys):
        exit_code = main(
            [
                "run",
                "--protocol", "mixed",
                "--sites", "2",
                "--items", "12",
                "--transactions", "30",
                "--switch-after", "2",
                "--no-semi-locks",
                "--seed", "6",
            ]
        )
        assert exit_code == 0
        assert "committed" in capsys.readouterr().out


class TestSweepCommand:
    def test_e1_sweep(self, capsys):
        exit_code = main(
            [
                "sweep",
                "--experiment", "e1",
                "--rates", "10", "30",
                "--sites", "2",
                "--items", "16",
                "--transactions", "25",
                "--seed", "7",
            ]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "2PL" in out and "PA" in out
        assert "mean_system_time" in out

    def test_e3_sweep(self, capsys):
        exit_code = main(
            [
                "sweep",
                "--experiment", "e3",
                "--sites", "2",
                "--items", "16",
                "--transactions", "25",
                "--arrival-rate", "30",
                "--seed", "8",
            ]
        )
        assert exit_code == 0
        assert "protocol" in capsys.readouterr().out

    def test_e6_sweep(self, capsys):
        exit_code = main(
            [
                "sweep",
                "--experiment", "e6",
                "--sites", "2",
                "--items", "16",
                "--transactions", "25",
                "--seed", "9",
            ]
        )
        assert exit_code == 0
        assert "enforcement" in capsys.readouterr().out
