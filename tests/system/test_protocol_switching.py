"""Future-work item 4: transactions switching protocol after repeated aborts."""

import pytest

from repro.common.config import ProtocolMix, SystemConfig
from repro.common.ids import TransactionId
from repro.common.protocol_names import Protocol
from repro.common.transactions import TransactionSpec
from repro.system.database import DistributedDatabase
from repro.system.runner import run_simulation


def crossing_2pl_specs():
    """Two 2PL transactions guaranteed to deadlock (opposite lock order)."""
    return [
        TransactionSpec(
            tid=TransactionId(0, 1), read_items=(), write_items=(0, 1),
            protocol=Protocol.TWO_PHASE_LOCKING, arrival_time=0.001, compute_time=0.001,
        ),
        TransactionSpec(
            tid=TransactionId(1, 1), read_items=(), write_items=(1, 0),
            protocol=Protocol.TWO_PHASE_LOCKING, arrival_time=0.001, compute_time=0.001,
        ),
    ]


def run_crossing(threshold):
    system = SystemConfig(
        num_sites=2, num_items=2, deadlock_detection_period=0.05, restart_delay=0.01,
        protocol_switch_threshold=threshold, seed=3,
    )
    database = DistributedDatabase(system)
    for spec in crossing_2pl_specs():
        database.submit(spec)
    return database.run()


class TestSwitching:
    def test_disabled_by_default(self):
        result = run_crossing(threshold=None)
        assert result.protocol_switches == 0
        assert result.committed == 2

    def test_victim_switches_to_pa_after_threshold(self):
        result = run_crossing(threshold=1)
        assert result.committed == 2
        assert result.serializable
        assert result.protocol_switches >= 1
        switched = [tid for tid, protocol in result.protocol_of.items()
                    if protocol.is_precedence_agreement]
        assert switched          # the deadlock victim ended its life as a PA transaction

    def test_summary_reports_switches(self):
        result = run_crossing(threshold=1)
        assert result.summary()["protocol_switches"] == result.protocol_switches

    def test_invalid_threshold_rejected(self):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            SystemConfig(protocol_switch_threshold=0)

    def test_high_contention_run_with_switching_stays_correct(self, small_workload):
        system = SystemConfig(
            num_sites=3, num_items=12, deadlock_detection_period=0.1, restart_delay=0.02,
            protocol_switch_threshold=2, seed=9,
        )
        workload = small_workload.with_overrides(
            arrival_rate=60.0, hotspot_probability=0.6, hotspot_fraction=0.15,
            protocol_mix=ProtocolMix.uniform(),
        )
        result = run_simulation(system, workload)
        assert result.committed == workload.num_transactions
        assert result.serializable

    def test_switching_never_triggers_for_pa_transactions(self, small_workload):
        system = SystemConfig(
            num_sites=3, num_items=24, protocol_switch_threshold=1, seed=4,
            deadlock_detection_period=0.1, restart_delay=0.02,
        )
        workload = small_workload.with_overrides(
            protocol_mix=ProtocolMix.pure(Protocol.PRECEDENCE_AGREEMENT)
        )
        result = run_simulation(system, workload)
        assert result.protocol_switches == 0
