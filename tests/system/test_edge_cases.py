"""Robustness: degenerate and extreme configurations must stay correct."""

import pytest

from repro.common.config import NetworkConfig, ProtocolMix, SystemConfig, WorkloadConfig
from repro.common.protocol_names import Protocol
from repro.system.runner import run_simulation


def run(system, workload, protocol=None):
    result = run_simulation(system, workload, protocol=protocol)
    assert result.committed == workload.num_transactions
    assert result.serializable
    return result


class TestDegenerateTopologies:
    def test_single_site_system(self):
        system = SystemConfig(num_sites=1, num_items=8, seed=1,
                              deadlock_detection_period=0.05, restart_delay=0.01)
        workload = WorkloadConfig(
            arrival_rate=30.0, num_transactions=40, min_size=1, max_size=3, seed=2
        )
        for protocol in ("2PL", "T/O", "PA", None):
            run(system, workload, protocol)

    def test_single_item_database(self):
        system = SystemConfig(num_sites=2, num_items=1, seed=3,
                              deadlock_detection_period=0.05, restart_delay=0.01)
        workload = WorkloadConfig(
            arrival_rate=20.0, num_transactions=30, min_size=1, max_size=1, seed=4
        )
        for protocol in ("2PL", "T/O", "PA"):
            run(system, workload, protocol)

    def test_full_replication(self):
        system = SystemConfig(num_sites=4, num_items=8, replication_factor=4, seed=5,
                              deadlock_detection_period=0.1, restart_delay=0.01)
        workload = WorkloadConfig(
            arrival_rate=15.0, num_transactions=30, min_size=1, max_size=3, seed=6
        )
        run(system, workload)

    def test_many_sites_few_items(self):
        system = SystemConfig(num_sites=8, num_items=8, seed=7,
                              deadlock_detection_period=0.1, restart_delay=0.01)
        workload = WorkloadConfig(
            arrival_rate=40.0, num_transactions=40, min_size=1, max_size=3, seed=8
        )
        run(system, workload)


class TestDegenerateTimings:
    def test_zero_network_delay(self):
        system = SystemConfig(
            num_sites=3, num_items=16, seed=9,
            network=NetworkConfig(fixed_delay=0.0, variable_delay=0.0, local_delay=0.0),
            deadlock_detection_period=0.05, restart_delay=0.01, io_time=0.0,
        )
        workload = WorkloadConfig(arrival_rate=50.0, num_transactions=50, min_size=1, max_size=4,
                                  compute_time=0.0, seed=10)
        for protocol in ("2PL", "T/O", "PA", None):
            run(system, workload, protocol)

    def test_large_network_variance(self):
        system = SystemConfig(
            num_sites=3, num_items=16, seed=11,
            network=NetworkConfig(fixed_delay=0.02, variable_delay=0.1),
            deadlock_detection_period=0.2, restart_delay=0.02,
        )
        workload = WorkloadConfig(
            arrival_rate=20.0, num_transactions=40, min_size=1, max_size=4, seed=12
        )
        for protocol in ("T/O", "PA"):
            result = run(system, workload, protocol)
            if protocol == "PA":
                stats = result.metrics.protocol_statistics(Protocol.PRECEDENCE_AGREEMENT)
                assert stats.restarts == 0

    def test_zero_compute_and_io_time(self):
        system = SystemConfig(num_sites=2, num_items=12, io_time=0.0, seed=13,
                              deadlock_detection_period=0.05, restart_delay=0.005)
        workload = WorkloadConfig(arrival_rate=100.0, num_transactions=60, min_size=1, max_size=4,
                                  compute_time=0.0, seed=14)
        run(system, workload)


class TestDegenerateWorkloads:
    def test_read_only_workload_has_no_conflicts(self):
        system = SystemConfig(num_sites=3, num_items=16, seed=15,
                              deadlock_detection_period=0.1, restart_delay=0.01)
        workload = WorkloadConfig(arrival_rate=40.0, num_transactions=50, min_size=1, max_size=5,
                                  read_fraction=1.0, seed=16)
        result = run(system, workload)
        assert result.restarts == 0
        assert result.deadlock_aborts == 0

    def test_write_only_hotspot_workload(self):
        system = SystemConfig(num_sites=3, num_items=16, seed=17,
                              deadlock_detection_period=0.1, restart_delay=0.01)
        workload = WorkloadConfig(arrival_rate=40.0, num_transactions=50, min_size=1, max_size=4,
                                  read_fraction=0.0, hotspot_probability=0.8, hotspot_fraction=0.1,
                                  seed=18)
        run(system, workload)

    def test_transactions_spanning_the_whole_database(self):
        system = SystemConfig(num_sites=2, num_items=6, seed=19,
                              deadlock_detection_period=0.05, restart_delay=0.01)
        workload = WorkloadConfig(
            arrival_rate=10.0, num_transactions=25, min_size=6, max_size=6, seed=20
        )
        for protocol in ("2PL", "PA"):
            run(system, workload, protocol)

    def test_pure_mix_behaves_like_fixed_protocol(self):
        system = SystemConfig(num_sites=2, num_items=16, seed=21,
                              deadlock_detection_period=0.1, restart_delay=0.01)
        workload = WorkloadConfig(arrival_rate=20.0, num_transactions=30, seed=22,
                                  protocol_mix=ProtocolMix.pure(Protocol.TIMESTAMP_ORDERING))
        via_mix = run_simulation(system, workload)
        via_protocol = run_simulation(system, workload, protocol="T/O")
        assert via_mix.mean_system_time == pytest.approx(via_protocol.mean_system_time)
        assert via_mix.messages_total == via_protocol.messages_total
