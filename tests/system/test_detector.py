"""Deadlock detector actor behaviour inside full runs."""

from repro.common.config import ProtocolMix, SystemConfig
from repro.common.ids import TransactionId
from repro.common.protocol_names import Protocol
from repro.common.transactions import TransactionSpec
from repro.system.database import DistributedDatabase
from repro.system.runner import run_simulation


def crossing_transactions():
    """Two 2PL transactions that lock items 0 and 1 in opposite orders.

    With write-all replication disabled (single copies at sites 0 and 1) and
    both transactions arriving at the same instant, each acquires its first
    lock and then waits for the other: a guaranteed deadlock that only the
    detector can break.
    """
    t_a = TransactionSpec(
        tid=TransactionId(0, 1),
        read_items=(),
        write_items=(0, 1),
        protocol=Protocol.TWO_PHASE_LOCKING,
        arrival_time=0.001,
        compute_time=0.001,
    )
    t_b = TransactionSpec(
        tid=TransactionId(1, 1),
        read_items=(),
        write_items=(1, 0),
        protocol=Protocol.TWO_PHASE_LOCKING,
        arrival_time=0.001,
        compute_time=0.001,
    )
    return [t_a, t_b]


class TestDeadlockResolution:
    def test_crossing_2pl_transactions_eventually_commit(self):
        system = SystemConfig(
            num_sites=2, num_items=2, deadlock_detection_period=0.05, restart_delay=0.01, seed=3
        )
        database = DistributedDatabase(system)
        for spec in crossing_transactions():
            database.submit(spec)
        result = database.run()
        assert result.committed == 2
        assert result.serializable
        assert result.deadlocks_found >= 1
        assert result.deadlock_aborts >= 1

    def test_victims_recorded(self):
        system = SystemConfig(
            num_sites=2, num_items=2, deadlock_detection_period=0.05, restart_delay=0.01, seed=3
        )
        database = DistributedDatabase(system)
        for spec in crossing_transactions():
            database.submit(spec)
        result = database.run()
        assert len(result.deadlock_victims) >= 1
        for victim in result.deadlock_victims:
            assert victim in (TransactionId(0, 1), TransactionId(1, 1))

    def test_detection_period_trades_latency(self):
        # A slower detector leaves the deadlocked transactions blocked longer,
        # so their mean system time cannot be smaller than with a fast detector.
        def run_with_period(period):
            system = SystemConfig(
                num_sites=2, num_items=2, deadlock_detection_period=period,
                restart_delay=0.01, seed=3,
            )
            database = DistributedDatabase(system)
            for spec in crossing_transactions():
                database.submit(spec)
            return database.run()

        fast = run_with_period(0.02)
        slow = run_with_period(1.0)
        assert slow.mean_system_time >= fast.mean_system_time

    def test_detector_scans_are_counted_and_charged(self):
        system = SystemConfig(
            num_sites=2, num_items=2, deadlock_detection_period=0.05,
            deadlock_detection_message_cost=3, restart_delay=0.01, seed=3,
        )
        database = DistributedDatabase(system)
        for spec in crossing_transactions():
            database.submit(spec)
        result = database.run()
        assert result.detector_scans >= 1
        assert result.messages_by_kind.get("deadlock-probe", 0) >= 3

    def test_zero_message_cost_supported(self):
        system = SystemConfig(
            num_sites=2, num_items=2, deadlock_detection_period=0.05,
            deadlock_detection_message_cost=0, restart_delay=0.01, seed=3,
        )
        database = DistributedDatabase(system)
        for spec in crossing_transactions():
            database.submit(spec)
        result = database.run()
        assert result.committed == 2
        assert result.messages_by_kind.get("deadlock-probe", 0) == 0


class TestNoFalseVictims:
    def test_pure_pa_run_has_no_deadlock_victims(self, small_system, small_workload):
        workload = small_workload.with_overrides(
            arrival_rate=50.0,
            protocol_mix=ProtocolMix.pure(Protocol.PRECEDENCE_AGREEMENT),
        )
        result = run_simulation(small_system, workload)
        assert result.deadlock_aborts == 0
        assert len(result.deadlock_victims) == 0

    def test_pure_to_run_has_no_deadlock_victims(self, small_system, small_workload):
        workload = small_workload.with_overrides(
            arrival_rate=50.0,
            protocol_mix=ProtocolMix.pure(Protocol.TIMESTAMP_ORDERING),
        )
        result = run_simulation(small_system, workload)
        assert result.deadlock_aborts == 0
        assert len(result.deadlock_victims) == 0
