"""End-to-end simulation runs of the full distributed database."""

import pytest

from repro.common.config import SystemConfig
from repro.common.ids import TransactionId
from repro.common.protocol_names import Protocol
from repro.common.transactions import TransactionSpec
from repro.storage.store import ValueStore
from repro.system.database import DistributedDatabase
from repro.system.runner import run_simulation


def run(protocol, small_system, small_workload, **workload_overrides):
    workload = small_workload
    if workload_overrides:
        workload = small_workload.with_overrides(**workload_overrides)
    return run_simulation(small_system, workload, protocol=protocol)


class TestStaticProtocolRuns:
    @pytest.mark.parametrize("protocol", ["2PL", "T/O", "PA"])
    def test_every_transaction_commits(self, protocol, small_system, small_workload):
        result = run(protocol, small_system, small_workload)
        assert result.committed == small_workload.num_transactions
        assert result.submitted == small_workload.num_transactions

    @pytest.mark.parametrize("protocol", ["2PL", "T/O", "PA"])
    def test_execution_is_conflict_serializable(self, protocol, small_system, small_workload):
        result = run(protocol, small_system, small_workload)
        assert result.serializable

    def test_pa_never_restarts(self, small_system, small_workload):
        result = run("PA", small_system, small_workload)
        stats = result.metrics.protocol_statistics(Protocol.PRECEDENCE_AGREEMENT)
        assert stats.restarts == 0
        assert stats.deadlock_aborts == 0

    def test_to_never_deadlocks(self, small_system, small_workload):
        result = run("T/O", small_system, small_workload)
        stats = result.metrics.protocol_statistics(Protocol.TIMESTAMP_ORDERING)
        assert stats.deadlock_aborts == 0

    def test_mean_system_time_positive(self, small_system, small_workload):
        result = run("2PL", small_system, small_workload)
        assert result.mean_system_time > 0.0
        assert result.throughput > 0.0

    def test_messages_are_accounted(self, small_system, small_workload):
        result = run("2PL", small_system, small_workload)
        assert result.messages_total > result.committed
        assert result.messages_per_transaction > 0
        assert "request" in result.messages_by_kind

    def test_pa_uses_more_messages_than_2pl(self, small_system, small_workload):
        # The propose/confirm negotiation costs PA extra messages per request.
        two_pl = run("2PL", small_system, small_workload)
        pa = run("PA", small_system, small_workload)
        assert pa.messages_per_transaction > two_pl.messages_per_transaction

    def test_summary_contains_key_figures(self, small_system, small_workload):
        summary = run("PA", small_system, small_workload).summary()
        for key in ("committed", "mean_system_time", "throughput", "serializable"):
            assert key in summary


class TestMixedAndDynamicRuns:
    def test_mixed_run_commits_everything_serializably(self, small_system, small_workload):
        result = run_simulation(small_system, small_workload)
        assert result.committed == small_workload.num_transactions
        assert result.serializable

    def test_mixed_run_uses_all_three_protocols(self, small_system, small_workload):
        result = run_simulation(small_system, small_workload)
        used = set(result.protocol_of.values())
        assert used == set(Protocol)

    def test_dynamic_selection_runs_to_completion(self, small_system, small_workload):
        result = run_simulation(small_system, small_workload, dynamic_selection=True)
        assert result.committed == small_workload.num_transactions
        assert result.serializable

    def test_dynamic_and_fixed_protocol_are_mutually_exclusive(self, small_system, small_workload):
        with pytest.raises(ValueError):
            run_simulation(small_system, small_workload, protocol="PA", dynamic_selection=True)

    def test_deadlock_victims_are_always_2pl(self, small_system, small_workload):
        # Corollary 2: every deadlock cycle contains a 2PL transaction, and the
        # detector only ever aborts 2PL members.
        workload = small_workload.with_overrides(
            arrival_rate=60.0, hotspot_probability=0.6, hotspot_fraction=0.1
        )
        result = run_simulation(small_system, workload)
        for victim in result.deadlock_victims:
            assert result.protocol_of[victim].is_two_phase_locking

    def test_determinism_same_seed_same_result(self, small_system, small_workload):
        first = run_simulation(small_system, small_workload, protocol="2PL")
        second = run_simulation(small_system, small_workload, protocol="2PL")
        assert first.mean_system_time == pytest.approx(second.mean_system_time)
        assert first.messages_total == second.messages_total
        assert first.deadlock_aborts == second.deadlock_aborts

    def test_different_seed_changes_the_run(self, small_system, small_workload):
        first = run_simulation(small_system, small_workload, protocol="2PL")
        second = run_simulation(
            small_system, small_workload.with_overrides(seed=99), protocol="2PL"
        )
        assert first.mean_system_time != pytest.approx(second.mean_system_time)


class TestReplication:
    def test_replicated_run_is_serializable(self, small_workload):
        system = SystemConfig(num_sites=3, num_items=18, replication_factor=2, seed=5)
        result = run_simulation(system, small_workload, protocol="2PL")
        assert result.serializable
        assert result.committed == small_workload.num_transactions

    def test_replicated_run_with_mixed_protocols(self, small_workload):
        system = SystemConfig(num_sites=3, num_items=18, replication_factor=3, seed=5)
        result = run_simulation(system, small_workload)
        assert result.serializable


class TestManualSubmission:
    def test_submit_individual_transactions(self, small_system):
        database = DistributedDatabase(small_system)
        specs = [
            TransactionSpec(
                tid=TransactionId(site, 1),
                read_items=(0,),
                write_items=(site + 1,),
                protocol=Protocol.TWO_PHASE_LOCKING,
                arrival_time=0.01 * (site + 1),
            )
            for site in range(small_system.num_sites)
        ]
        for spec in specs:
            database.submit(spec)
        result = database.run()
        assert result.committed == len(specs)

    def test_unknown_origin_site_rejected(self, small_system):
        database = DistributedDatabase(small_system)
        bad = TransactionSpec(
            tid=TransactionId(99, 1),
            read_items=(0,),
            write_items=(),
            protocol=Protocol.TWO_PHASE_LOCKING,
        )
        with pytest.raises(Exception):
            database.submit(bad)

    def test_transaction_logic_applied_under_locks(self, small_system):
        store = ValueStore(default_value=0)
        database = DistributedDatabase(small_system, value_store=store)
        catalog = database.catalog
        increments = 20
        specs = []
        for index in range(increments):
            tid = TransactionId(index % small_system.num_sites, index + 1)
            specs.append(
                TransactionSpec(
                    tid=tid,
                    read_items=(0,),
                    write_items=(0,),
                    protocol=Protocol.TWO_PHASE_LOCKING,
                    arrival_time=0.001 * index,
                    logic=lambda reads: {0: reads[0] + 1},
                )
            )
        for spec in specs:
            database.submit(spec)
        result = database.run()
        assert result.committed == increments
        assert result.serializable
        for copy in catalog.copies_of(0):
            assert store.read(copy) == increments
