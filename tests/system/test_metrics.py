"""Metrics collector."""

import pytest

from repro.common.ids import CopyId, TransactionId
from repro.common.operations import OperationType
from repro.common.protocol_names import Protocol
from repro.common.transactions import TransactionOutcome, TransactionSpec
from repro.system.metrics import MetricsCollector


def outcome(seq=1, protocol=Protocol.TWO_PHASE_LOCKING, arrival=0.0, commit=1.0, restarts=0):
    spec = TransactionSpec(
        tid=TransactionId(0, seq), read_items=(0,), write_items=(1,), arrival_time=arrival
    )
    return TransactionOutcome(
        spec=spec, protocol=protocol, arrival_time=arrival, commit_time=commit, restarts=restarts
    )


class TestCommitTracking:
    def test_mean_system_time_overall_and_per_protocol(self):
        metrics = MetricsCollector()
        metrics.record_commit(outcome(1, Protocol.TWO_PHASE_LOCKING, 0.0, 2.0))
        metrics.record_commit(outcome(2, Protocol.TIMESTAMP_ORDERING, 0.0, 4.0))
        assert metrics.mean_system_time() == pytest.approx(3.0)
        assert metrics.mean_system_time(Protocol.TWO_PHASE_LOCKING) == pytest.approx(2.0)
        assert metrics.mean_system_time(Protocol.TIMESTAMP_ORDERING) == pytest.approx(4.0)

    def test_committed_count(self):
        metrics = MetricsCollector()
        metrics.record_commit(outcome(1))
        metrics.record_commit(outcome(2))
        assert metrics.committed_count == 2
        assert len(metrics.outcomes) == 2

    def test_throughput_uses_elapsed_span(self):
        metrics = MetricsCollector()
        metrics.record_arrival(Protocol.TWO_PHASE_LOCKING, 0.0)
        metrics.record_commit(outcome(1, arrival=0.0, commit=2.0))
        metrics.record_commit(outcome(2, arrival=1.0, commit=4.0))
        assert metrics.elapsed_time == pytest.approx(4.0)
        assert metrics.throughput() == pytest.approx(0.5)

    def test_empty_collector_reports_zeroes(self):
        metrics = MetricsCollector()
        assert metrics.mean_system_time() == 0.0
        assert metrics.throughput() == 0.0
        assert metrics.system_time_summary().count == 0

    def test_system_time_summary_filters_by_protocol(self):
        metrics = MetricsCollector()
        metrics.record_commit(outcome(1, Protocol.TWO_PHASE_LOCKING, commit=2.0))
        metrics.record_commit(outcome(2, Protocol.PRECEDENCE_AGREEMENT, commit=6.0))
        summary = metrics.system_time_summary(Protocol.PRECEDENCE_AGREEMENT)
        assert summary.count == 1
        assert summary.mean == pytest.approx(6.0)


class TestProtocolStatistics:
    def test_restart_counters_split_by_cause(self):
        metrics = MetricsCollector()
        metrics.record_restart(Protocol.TIMESTAMP_ORDERING, due_to_deadlock=False)
        metrics.record_restart(Protocol.TWO_PHASE_LOCKING, due_to_deadlock=True)
        assert metrics.total_restarts() == 1
        assert metrics.total_deadlock_aborts() == 1
        assert metrics.protocol_statistics(Protocol.TWO_PHASE_LOCKING).deadlock_aborts == 1

    def test_rejection_and_backoff_probabilities(self):
        metrics = MetricsCollector()
        for _ in range(4):
            metrics.record_request_issued(Protocol.TIMESTAMP_ORDERING, OperationType.READ)
        metrics.record_rejection(Protocol.TIMESTAMP_ORDERING, OperationType.READ)
        stats = metrics.protocol_statistics(Protocol.TIMESTAMP_ORDERING)
        assert stats.read_rejection_probability == pytest.approx(0.25)
        assert stats.write_rejection_probability == 0.0

        for _ in range(2):
            metrics.record_request_issued(Protocol.PRECEDENCE_AGREEMENT, OperationType.WRITE)
        metrics.record_backoff(Protocol.PRECEDENCE_AGREEMENT, OperationType.WRITE)
        pa_stats = metrics.protocol_statistics(Protocol.PRECEDENCE_AGREEMENT)
        assert pa_stats.write_backoff_probability == pytest.approx(0.5)

    def test_restart_probability(self):
        metrics = MetricsCollector()
        for _ in range(4):
            metrics.record_attempt(Protocol.TIMESTAMP_ORDERING)
        metrics.record_restart(Protocol.TIMESTAMP_ORDERING, due_to_deadlock=False)
        stats = metrics.protocol_statistics(Protocol.TIMESTAMP_ORDERING)
        assert stats.restart_probability == pytest.approx(0.25)

    def test_lock_time_accumulators(self):
        metrics = MetricsCollector()
        metrics.record_lock_time(Protocol.PRECEDENCE_AGREEMENT, 0.2, aborted=False)
        metrics.record_lock_time(Protocol.PRECEDENCE_AGREEMENT, 0.4, aborted=False)
        metrics.record_lock_time(Protocol.PRECEDENCE_AGREEMENT, 1.0, aborted=True)
        stats = metrics.protocol_statistics(Protocol.PRECEDENCE_AGREEMENT)
        assert stats.lock_time_committed.mean == pytest.approx(0.3)
        assert stats.lock_time_aborted.mean == pytest.approx(1.0)

    def test_backoff_round_counter(self):
        metrics = MetricsCollector()
        metrics.record_backoff_round(Protocol.PRECEDENCE_AGREEMENT)
        assert metrics.total_backoff_rounds() == 1


class TestThroughputPerCopy:
    def test_read_write_throughput_per_copy(self):
        metrics = MetricsCollector()
        copy = CopyId(0, 0)
        metrics.record_arrival(Protocol.TWO_PHASE_LOCKING, 0.0)
        metrics.record_grant(copy, OperationType.READ)
        metrics.record_grant(copy, OperationType.READ)
        metrics.record_grant(copy, OperationType.WRITE)
        metrics.record_commit(outcome(1, commit=2.0))
        assert metrics.read_throughput(copy) == pytest.approx(1.0)
        assert metrics.write_throughput(copy) == pytest.approx(0.5)
        assert metrics.system_throughput() == pytest.approx(1.5)

    def test_read_fraction(self):
        metrics = MetricsCollector()
        copy = CopyId(0, 0)
        metrics.record_grant(copy, OperationType.READ)
        metrics.record_grant(copy, OperationType.READ)
        metrics.record_grant(copy, OperationType.WRITE)
        assert metrics.read_fraction() == pytest.approx(2.0 / 3.0)

    def test_read_fraction_defaults_to_half_without_data(self):
        assert MetricsCollector().read_fraction() == pytest.approx(0.5)

    def test_average_throughputs_divide_by_touched_copies(self):
        metrics = MetricsCollector()
        metrics.record_arrival(Protocol.TWO_PHASE_LOCKING, 0.0)
        metrics.record_grant(CopyId(0, 0), OperationType.READ)
        metrics.record_grant(CopyId(1, 0), OperationType.WRITE)
        metrics.record_commit(outcome(1, commit=1.0))
        assert metrics.average_read_throughput() == pytest.approx(0.5)
        assert metrics.average_write_throughput() == pytest.approx(0.5)


class TestWindowedSeries:
    def test_empty_collector_has_no_windows(self):
        assert MetricsCollector().windowed_series() == []

    def test_width_must_be_positive(self):
        with pytest.raises(ValueError):
            MetricsCollector().windowed_series(width=0.0)

    def test_commits_bucket_by_commit_time(self):
        metrics = MetricsCollector()
        metrics.record_commit(outcome(1, Protocol.TWO_PHASE_LOCKING, 0.0, 0.5))
        metrics.record_commit(outcome(2, Protocol.TWO_PHASE_LOCKING, 0.0, 1.5))
        metrics.record_commit(outcome(3, Protocol.TIMESTAMP_ORDERING, 2.0, 5.5))
        series = metrics.windowed_series(width=2.0)
        assert [row["committed"] for row in series] == [2, 0, 1]
        assert series[0]["start"] == 0.0 and series[0]["end"] == 2.0
        assert series[1]["committed"] == 0
        assert series[1]["mean_system_time"] == 0.0

    def test_window_mean_and_restart_probability(self):
        metrics = MetricsCollector()
        metrics.record_commit(outcome(1, Protocol.TWO_PHASE_LOCKING, 0.0, 1.0, restarts=1))
        metrics.record_commit(outcome(2, Protocol.TWO_PHASE_LOCKING, 0.0, 1.5))
        (row,) = metrics.windowed_series(width=2.0)
        assert row["mean_system_time"] == pytest.approx(1.25)
        # 1 abort over 3 attempts (two commits plus one restart).
        assert row["restart_probability"] == pytest.approx(1 / 3)

    def test_protocol_shares_sum_to_one_per_nonempty_window(self):
        metrics = MetricsCollector()
        metrics.record_commit(outcome(1, Protocol.TWO_PHASE_LOCKING, 0.0, 0.5))
        metrics.record_commit(outcome(2, Protocol.TIMESTAMP_ORDERING, 0.0, 0.6))
        metrics.record_commit(outcome(3, Protocol.PRECEDENCE_AGREEMENT, 0.0, 0.7))
        metrics.record_commit(outcome(4, Protocol.PRECEDENCE_AGREEMENT, 0.0, 0.8))
        (row,) = metrics.windowed_series(width=1.0)
        assert row["share_2PL"] == pytest.approx(0.25)
        assert row["share_T/O"] == pytest.approx(0.25)
        assert row["share_PA"] == pytest.approx(0.5)

    def test_series_is_json_pure(self):
        import json

        metrics = MetricsCollector()
        metrics.record_commit(outcome(1, Protocol.TWO_PHASE_LOCKING, 0.0, 3.0))
        series = metrics.windowed_series()
        assert json.loads(json.dumps(series)) == series


class TestPostDriftMean:
    def test_cut_is_on_arrival_time(self):
        metrics = MetricsCollector()
        metrics.record_commit(outcome(1, Protocol.TWO_PHASE_LOCKING, arrival=0.0, commit=9.0))
        metrics.record_commit(outcome(2, Protocol.TWO_PHASE_LOCKING, arrival=5.0, commit=7.0))
        # The first transaction commits after the boundary but arrived before
        # it, so only the second counts.
        assert metrics.mean_system_time_after(4.0) == pytest.approx(2.0)

    def test_boundary_zero_covers_everything(self):
        metrics = MetricsCollector()
        metrics.record_commit(outcome(1, Protocol.TWO_PHASE_LOCKING, 0.0, 2.0))
        metrics.record_commit(outcome(2, Protocol.TWO_PHASE_LOCKING, 1.0, 5.0))
        assert metrics.mean_system_time_after(0.0) == pytest.approx(3.0)

    def test_no_matching_transactions_yields_zero(self):
        metrics = MetricsCollector()
        metrics.record_commit(outcome(1, Protocol.TWO_PHASE_LOCKING, 0.0, 2.0))
        assert metrics.mean_system_time_after(10.0) == 0.0
