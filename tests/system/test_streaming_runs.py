"""Streaming-audit runs end to end: bounded logs, stable results, warm stores.

Companion to the differential harness in
``tests/properties/test_oracle_equivalence.py`` (which proves the verdicts
equivalent): these tests pin the *operational* properties of
``audit="streaming"`` runs — the execution log never materialises its full
history, the audit survives without any full-log call, and the experiment
drivers produce byte-identical results serially, in parallel, and from a
warm result store.
"""

import pytest

from repro.analysis.replications import SimulationTask, run_tasks
from repro.common.config import SystemConfig, WorkloadConfig
from repro.storage.log import ExecutionLog
from repro.store import ResultStore
from repro.system.runner import run_simulation


@pytest.fixture(scope="module")
def streaming_system():
    return SystemConfig(
        num_sites=2,
        num_items=16,
        deadlock_detection_period=0.1,
        restart_delay=0.02,
        seed=1,
        audit="streaming",
    )


@pytest.fixture(scope="module")
def tiny_workload():
    return WorkloadConfig(
        arrival_rate=25.0,
        num_transactions=25,
        min_size=1,
        max_size=4,
        compute_time=0.002,
        seed=2,
    )


class TestBoundedLogDiscipline:
    def test_streaming_run_never_materialises_the_full_log(
        self, streaming_system, tiny_workload, monkeypatch
    ):
        """No streaming-path caller may ask the log for its full history.

        ``ExecutionLog.all_entries`` builds an O(run length) list, which is
        exactly what the streaming pipeline exists to avoid; this regression
        test makes any reintroduced call fail the run outright.
        """

        def explode(self):
            raise AssertionError(
                "a streaming-audit run materialised the full execution log"
            )

        monkeypatch.setattr(ExecutionLog, "all_entries", explode)
        result = run_simulation(streaming_system, tiny_workload, protocol="2PL")
        assert result.audit == "streaming"
        assert result.serializability.serializable

    def test_streaming_run_retires_the_whole_log(
        self, streaming_system, tiny_workload
    ):
        result = run_simulation(streaming_system, tiny_workload, protocol="2PL")
        stats = result.audit_stats
        assert stats["retired"] == result.committed
        assert stats["live_entries"] == 0
        assert stats["live_transactions"] == 0
        assert stats["peak_live_entries"] < stats["entries_seen"]

    def test_batch_run_reports_no_audit_stats(self, tiny_workload):
        result = run_simulation(
            SystemConfig(num_sites=2, num_items=16, seed=1), tiny_workload
        )
        assert result.audit == "batch"
        assert result.audit_stats == {}


class TestStreamingDriverIdentity:
    """Serial == parallel == warm resume, byte for byte, for streaming tasks."""

    def _tasks(self, streaming_system, tiny_workload):
        return [
            SimulationTask(
                system=streaming_system.with_overrides(seed=seed),
                workload=tiny_workload.with_overrides(seed=seed + 1),
                protocol=protocol,
            )
            for seed in (0, 1)
            for protocol in ("2PL", "T/O", "PA")
        ]

    def test_parallel_summaries_identical_to_serial(
        self, streaming_system, tiny_workload
    ):
        tasks = self._tasks(streaming_system, tiny_workload)
        serial = run_tasks(tasks, jobs=1)
        parallel = run_tasks(tasks, jobs=4)
        assert serial == parallel
        assert all(summary["audit"] == "streaming" for summary in serial)

    def test_warm_resume_serves_identical_summaries_without_executing(
        self, streaming_system, tiny_workload, tmp_path, monkeypatch
    ):
        tasks = self._tasks(streaming_system, tiny_workload)
        store = ResultStore(tmp_path / "runs.jsonl")
        first = run_tasks(tasks, store=store)

        def explode(task):
            raise AssertionError("a warm re-run must not execute any task")

        monkeypatch.setattr("repro.analysis.replications.execute_task", explode)
        warm_store = ResultStore(store.path)
        again = run_tasks(tasks, store=warm_store, jobs=2)
        assert again == first
        assert warm_store.appended == 0
        assert warm_store.hits == len(tasks)

    def test_audit_mode_changes_the_task_key(self, streaming_system, tiny_workload):
        """Batch and streaming results can never serve each other from a store."""
        from repro.store import task_key

        streaming_task = SimulationTask(
            system=streaming_system, workload=tiny_workload, protocol="2PL"
        )
        batch_task = SimulationTask(
            system=streaming_system.with_overrides(audit="batch"),
            workload=tiny_workload,
            protocol="2PL",
        )
        assert task_key(streaming_task) != task_key(batch_task)

    def test_streaming_summary_matches_batch_summary_except_audit_fields(
        self, streaming_system, tiny_workload
    ):
        streaming_task = SimulationTask(
            system=streaming_system, workload=tiny_workload, protocol="2PL"
        )
        batch_task = SimulationTask(
            system=streaming_system.with_overrides(audit="batch"),
            workload=tiny_workload,
            protocol="2PL",
        )
        (streaming_summary,) = run_tasks([streaming_task])
        (batch_summary,) = run_tasks([batch_task])
        assert streaming_summary.pop("audit") == "streaming"
        assert batch_summary.pop("audit") == "batch"
        assert streaming_summary.pop("commit_times") == []
        assert len(batch_summary.pop("commit_times")) == batch_summary["committed"]
        assert streaming_summary == batch_summary
