"""Coordinator behaviour observed through targeted end-to-end scenarios."""

import pytest

from repro.common.config import NetworkConfig, SystemConfig
from repro.common.ids import TransactionId
from repro.common.protocol_names import Protocol
from repro.common.transactions import TransactionSpec, TransactionStatus
from repro.storage.store import ValueStore
from repro.system.database import DistributedDatabase


def build_database(num_sites=2, num_items=8, **overrides):
    system = SystemConfig(
        num_sites=num_sites,
        num_items=num_items,
        network=NetworkConfig(fixed_delay=0.005, variable_delay=0.0, local_delay=0.001),
        io_time=0.001,
        restart_delay=0.01,
        deadlock_detection_period=0.05,
        seed=1,
        **overrides,
    )
    return DistributedDatabase(system), system


def spec(tid, reads=(), writes=(), protocol=Protocol.TWO_PHASE_LOCKING, arrival=0.001, logic=None,
         compute=0.001):
    return TransactionSpec(
        tid=tid,
        read_items=tuple(reads),
        write_items=tuple(writes),
        protocol=protocol,
        arrival_time=arrival,
        compute_time=compute,
        logic=logic,
    )


class TestLifecycle:
    def test_single_transaction_lifecycle(self):
        database, _ = build_database()
        tid = TransactionId(0, 1)
        database.submit(spec(tid, reads=(0,), writes=(1,)))
        result = database.run()
        assert result.committed == 1
        issuer = database.issuer(0)
        assert issuer.execution_status(tid) is TransactionStatus.FINISHED
        assert issuer.active_transactions() == ()

    def test_read_only_transaction(self):
        database, _ = build_database()
        database.submit(spec(TransactionId(0, 1), reads=(0, 1, 2)))
        result = database.run()
        assert result.committed == 1
        assert result.serializable

    def test_write_only_transaction(self):
        database, _ = build_database()
        database.submit(spec(TransactionId(0, 1), writes=(0, 1, 2)))
        result = database.run()
        assert result.committed == 1

    def test_read_write_same_item_issues_single_request_per_copy(self):
        database, _ = build_database()
        tid = TransactionId(0, 1)
        database.submit(spec(tid, reads=(0,), writes=(0,)))
        result = database.run()
        assert result.committed == 1
        # One physical request only: the write subsumes the read.
        assert result.messages_by_kind["request"] == 1

    def test_per_protocol_commit_paths(self):
        for protocol in Protocol:
            database, _ = build_database()
            database.submit(spec(TransactionId(0, 1), reads=(0,), writes=(1,), protocol=protocol))
            result = database.run()
            assert result.committed == 1, protocol
            assert result.serializable, protocol

    def test_protocol_registry_records_choice(self):
        database, _ = build_database()
        tid = TransactionId(0, 1)
        database.submit(spec(tid, reads=(0,), protocol=Protocol.PRECEDENCE_AGREEMENT))
        database.run()
        assert database.protocol_of(tid) is Protocol.PRECEDENCE_AGREEMENT

    def test_missing_selector_for_unassigned_protocol_raises(self):
        database, _ = build_database()
        database.submit(spec(TransactionId(0, 1), reads=(0,), protocol=None))
        with pytest.raises(Exception):
            database.run()


class TestConflictHandling:
    def test_to_restart_on_conflict_eventually_commits(self):
        database, _ = build_database()
        # Two T/O writers on the same item arriving close together: the one
        # whose request lands second at the queue may be rejected and restart.
        database.submit(
            spec(TransactionId(0, 1), writes=(0,), protocol=Protocol.TIMESTAMP_ORDERING,
                 arrival=0.001)
        )
        database.submit(
            spec(TransactionId(1, 1), writes=(0,), protocol=Protocol.TIMESTAMP_ORDERING,
                 arrival=0.0012)
        )
        result = database.run()
        assert result.committed == 2
        assert result.serializable

    def test_conflicting_writers_serialize_on_value(self):
        store = ValueStore(default_value=0)
        system_size = 10
        database, system = build_database()
        database_with_store = DistributedDatabase(system, value_store=store)
        for index in range(system_size):
            tid = TransactionId(index % system.num_sites, index + 1)
            database_with_store.submit(
                spec(
                    tid,
                    reads=(0,),
                    writes=(0,),
                    protocol=Protocol.PRECEDENCE_AGREEMENT,
                    arrival=0.001 + 0.0005 * index,
                    logic=lambda reads: {0: reads[0] + 1},
                )
            )
        result = database_with_store.run()
        assert result.committed == system_size
        copy = database_with_store.catalog.copies_of(0)[0]
        assert store.read(copy) == system_size

    def test_lost_update_prevented_across_protocols(self):
        store = ValueStore(default_value=0)
        _, system = build_database()
        database = DistributedDatabase(system, value_store=store)
        protocols = [Protocol.TWO_PHASE_LOCKING, Protocol.TIMESTAMP_ORDERING,
                     Protocol.PRECEDENCE_AGREEMENT] * 4
        for index, protocol in enumerate(protocols):
            tid = TransactionId(index % system.num_sites, index + 1)
            database.submit(
                spec(
                    tid,
                    reads=(3,),
                    writes=(3,),
                    protocol=protocol,
                    arrival=0.001 + 0.0003 * index,
                    logic=lambda reads: {3: reads[3] + 1},
                )
            )
        result = database.run()
        assert result.committed == len(protocols)
        assert result.serializable
        copy = database.catalog.copies_of(3)[0]
        assert store.read(copy) == len(protocols)

    def test_granted_lock_count_reflects_held_locks(self):
        database, _ = build_database()
        tid = TransactionId(0, 1)
        blocker = TransactionId(1, 1)
        database.submit(spec(blocker, writes=(0,), arrival=0.001, compute=0.2))
        database.submit(spec(tid, writes=(0, 1), arrival=0.01))
        database.simulator.run(until=0.1)
        issuer = database.issuer(0)
        # The second transaction holds its lock on item 1 but waits for item 0.
        assert issuer.granted_lock_count(tid) >= 0
        database.run()


class TestReplicationWriteAll:
    def test_write_all_touches_every_copy(self):
        store = ValueStore(default_value=0)
        system = SystemConfig(num_sites=3, num_items=6, replication_factor=3, seed=2)
        database = DistributedDatabase(system, value_store=store)
        tid = TransactionId(0, 1)
        database.submit(
            spec(tid, writes=(0,), protocol=Protocol.TWO_PHASE_LOCKING,
                 logic=lambda reads: {0: 99})
        )
        result = database.run()
        assert result.committed == 1
        for copy in database.catalog.copies_of(0):
            assert store.read(copy) == 99
