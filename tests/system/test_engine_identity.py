"""Serial/parallel engine identity: the determinism contract, end to end.

``engine="parallel"`` must be *invisible* in every result: the partitioned
engine merges its per-site queues in the global ``(time, priority, seq)``
order, so a parallel run is the same simulation as a serial run, byte for
byte (docs/determinism.md).  This module pins that contract at full system
scale:

* every registered scenario — faults, crashes, delay spikes, two-phase
  commit, streaming audit — summarises identically under both engines;
* the parallel engine reproduces the pre-refactor golden digests of
  ``tests/commit/golden_one_phase.json`` exactly;
* the replication drivers stay byte-identical across ``--jobs`` and warm
  result-store resumes when the tasks run parallel;
* the ``engine`` field keys separately in the result store, so the identity
  above is checked, never assumed via a shared cache row.
"""

import dataclasses
import hashlib
import json
import pathlib

import pytest

from repro.analysis.replications import (
    SimulationTask,
    execute_task,
    run_tasks,
    summarize_run,
)
from repro.common.config import (
    DelaySpike,
    FaultConfig,
    NetworkConfig,
    SystemConfig,
    WorkloadConfig,
)
from repro.store import ResultStore, task_key
from repro.system.database import DistributedDatabase
from repro.system.runner import run_simulation
from repro.workload.scenarios import all_scenarios


def _both_engines(scenario, *, process_workers=0):
    """Run one scenario under both engines and return the two results.

    ``process_workers > 0`` additionally runs the multi-process backend of
    the parallel engine and returns it as a third result.
    """
    results = {}
    variants = {"serial": ("serial", 0), "parallel": ("parallel", 0)}
    if process_workers:
        variants["process"] = ("parallel", process_workers)
    for label, (engine, workers) in variants.items():
        results[label] = run_simulation(
            scenario.system.with_overrides(engine=engine, engine_workers=workers),
            scenario.workload,
            protocol=scenario.protocol,
            dynamic_selection=scenario.dynamic_selection,
            selection_mode=scenario.selection_mode,
        )
    return results


def _assert_identical(scenario, *, process_workers=0):
    results = _both_engines(scenario, process_workers=process_workers)
    serial, parallel = results["serial"], results["parallel"]
    assert serial.engine == "serial" and parallel.engine == "parallel"
    # The full experiment-facing summary, not a filtered subset: engine and
    # engine_stats are deliberately excluded from summaries, so nothing may
    # differ at all.
    assert summarize_run(parallel) == summarize_run(serial)
    # And the parallel run really ran partitioned: window accounting exists.
    assert parallel.engine_stats["engine"] == "parallel"
    assert parallel.engine_stats["windows"] > 0
    assert serial.engine_stats == {}
    if process_workers:
        process = results["process"]
        assert summarize_run(process) == summarize_run(serial)
        # The run really crossed process boundaries — no silent fallback.
        assert process.engine_stats["backend"] == "process"
        assert process.engine_stats["workers"] == min(
            process_workers, scenario.system.num_sites
        )
        assert process.engine_stats["bytes_shipped"] > 0
    return parallel


@pytest.mark.parametrize(
    "scenario", all_scenarios(), ids=lambda scenario: scenario.name
)
def test_every_registered_scenario_runs_identically(scenario):
    """Serial, inline-parallel and process-parallel agree on every registered
    scenario — faults, crashes, delay spikes and commit variants included."""
    _assert_identical(scenario.configured(transactions=40), process_workers=4)


class TestEdgeConfigurations:
    """The lookahead edge cases, at full system scale."""

    def test_single_site_degrades_to_serial_semantics(self):
        scenario = dataclasses.replace(
            all_scenarios()[0].configured(transactions=40),
            system=SystemConfig(num_sites=1, num_items=16, seed=3),
        )
        parallel = _assert_identical(scenario)
        # One site: no cross-site messages exist, so no promises are checked
        # and (almost) every window holds a single LP.
        assert parallel.engine_stats["promise_checks"] == 0

    def test_zero_lookahead_runs_barrier_windows_identically(self):
        """``fixed_delay=0`` collapses the lookahead: the engine must fall
        back to barrier windows and *still* match the serial run."""
        scenario = dataclasses.replace(
            all_scenarios()[0].configured(transactions=30),
            system=SystemConfig(
                num_sites=3,
                num_items=16,
                seed=3,
                network=NetworkConfig(fixed_delay=0.0, variable_delay=0.02),
            ),
        )
        parallel = _assert_identical(scenario)
        stats = parallel.engine_stats
        assert stats["barrier_mode"] is True
        assert stats["lookahead"] == 0.0
        assert stats["windows"] == stats["barrier_windows"] > 0

    def test_delay_spikes_never_undercut_the_promise(self):
        """Spikes multiply latency by >= 1; the per-event promise assertion
        inside the engine is what turns that argument into a checked fact."""
        scenario = dataclasses.replace(
            all_scenarios()[0].configured(transactions=40),
            system=SystemConfig(
                num_sites=3,
                num_items=16,
                seed=3,
                faults=FaultConfig(
                    spikes=(DelaySpike(at=0.5, duration=2.0, multiplier=8.0),)
                ),
            ),
        )
        parallel = _assert_identical(scenario)
        assert parallel.engine_stats["promise_checks"] > 0

    def test_streaming_audit_runs_identically_under_parallel(self):
        scenario = dataclasses.replace(
            all_scenarios()[0].configured(transactions=40),
            system=SystemConfig(num_sites=3, num_items=16, seed=3, audit="streaming"),
        )
        parallel = _assert_identical(scenario)
        assert parallel.audit == "streaming"
        assert parallel.audit_stats["live_entries"] == 0


class TestGoldenDigestsUnderParallel:
    """The parallel engine reproduces the pre-refactor golden digests.

    These are the same five configurations ``tests/commit/
    test_one_phase_identity.py`` pins for the serial engine; running them
    with ``engine="parallel"`` must land on the *same* digests — identity
    not just serial-vs-parallel within this codebase, but against behaviour
    frozen before the commit-pipeline refactor ever happened.
    """

    GOLDEN = json.loads(
        (
            pathlib.Path(__file__).parent.parent / "commit" / "golden_one_phase.json"
        ).read_text()
    )

    CASES = {
        "mixed-default": SimulationTask(
            system=SystemConfig(num_sites=3, num_items=24, seed=5, engine="parallel"),
            workload=WorkloadConfig(arrival_rate=25.0, num_transactions=120, seed=7),
        ),
        "pure-2pl-replicated": SimulationTask(
            system=SystemConfig(
                num_sites=3,
                num_items=24,
                replication_factor=2,
                seed=5,
                engine="parallel",
            ),
            workload=WorkloadConfig(arrival_rate=25.0, num_transactions=120, seed=7),
            protocol="2PL",
        ),
        "dynamic": SimulationTask(
            system=SystemConfig(num_sites=3, num_items=24, seed=5, engine="parallel"),
            workload=WorkloadConfig(arrival_rate=25.0, num_transactions=100, seed=7),
            dynamic_selection=True,
        ),
    }

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_parallel_engine_matches_pre_refactor_golden(self, name):
        summary = execute_task(self.CASES[name])
        filtered = {key: summary[key] for key in self.GOLDEN["keys"]}
        blob = json.dumps(filtered, sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()
        assert digest == self.GOLDEN["digests"][name], (
            f"parallel-engine run {name!r} diverged from the golden behaviour"
        )


class TestDriverIdentity:
    """``--jobs`` and warm resumes stay byte-identical for parallel tasks."""

    def _tasks(self):
        return [
            SimulationTask(
                system=SystemConfig(
                    num_sites=3, num_items=16, seed=seed, engine="parallel"
                ),
                workload=WorkloadConfig(
                    arrival_rate=25.0, num_transactions=25, seed=seed + 1
                ),
                protocol=protocol,
            )
            for seed in (0, 1)
            for protocol in ("2PL", "T/O", "PA")
        ]

    def test_parallel_tasks_identical_across_jobs(self):
        tasks = self._tasks()
        serial = run_tasks(tasks, jobs=1)
        fanned = run_tasks(tasks, jobs=4)
        assert fanned == serial

    def test_warm_resume_serves_parallel_tasks_without_executing(
        self, tmp_path, monkeypatch
    ):
        tasks = self._tasks()
        store = ResultStore(tmp_path / "runs.jsonl")
        first = run_tasks(tasks, store=store)

        def explode(task):
            raise AssertionError("a warm re-run must not execute any task")

        monkeypatch.setattr("repro.analysis.replications.execute_task", explode)
        warm_store = ResultStore(store.path)
        again = run_tasks(tasks, store=warm_store, jobs=4)
        assert again == first
        assert warm_store.appended == 0
        assert warm_store.hits == len(tasks)

    def test_engine_changes_the_task_key(self):
        """Serial and parallel runs may never serve each other from a store —
        otherwise every identity test above would silently compare a cached
        row against itself."""
        serial_task = self._tasks()[0]
        parallel_task = SimulationTask(
            system=serial_task.system.with_overrides(engine="serial"),
            workload=serial_task.workload,
            protocol=serial_task.protocol,
        )
        assert task_key(serial_task) != task_key(parallel_task)


class TestProcessBackend:
    """The multi-process backend: fallbacks, crashes, stores, statistics."""

    def _scenario(self, **system_overrides):
        scenario = all_scenarios()[0].configured(transactions=40)
        if system_overrides:
            scenario = dataclasses.replace(
                scenario, system=scenario.system.with_overrides(**system_overrides)
            )
        return scenario

    def _run(self, scenario, **kwargs):
        return run_simulation(
            scenario.system,
            scenario.workload,
            protocol=scenario.protocol,
            dynamic_selection=scenario.dynamic_selection,
            selection_mode=scenario.selection_mode,
            **kwargs,
        )

    def test_worker_count_clamps_to_the_site_count(self):
        scenario = self._scenario(engine="parallel", engine_workers=16)
        result = self._run(scenario)
        stats = result.engine_stats
        assert stats["backend"] == "process"
        assert stats["workers"] == scenario.system.num_sites
        assert stats["requested_workers"] == 16

    def test_scheduler_statistics_are_reported(self):
        result = self._run(self._scenario(engine="parallel", engine_workers=2))
        stats = result.engine_stats
        assert stats["windows"] > 0
        assert stats["bytes_shipped"] > 0 and stats["bytes_received"] > 0
        assert stats["mean_window_width"] == pytest.approx(stats["lookahead"])
        # Workers fire the site events; the parent fires the control events.
        assert (
            sum(stats["events_per_worker"].values()) + stats["control_events"]
            == stats["events_total"]
        )
        assert stats["worker_idle_seconds"] >= 0.0
        assert stats["barrier_fallback"] is False

    def test_single_site_falls_back_inline_and_says_so(self):
        scenario = dataclasses.replace(
            self._scenario(),
            system=SystemConfig(
                num_sites=1, num_items=16, seed=3, engine="parallel", engine_workers=4
            ),
        )
        stats = self._run(scenario).engine_stats
        assert stats["backend"] == "inline"
        assert stats["process_fallback"] == "single-site"
        assert stats["requested_workers"] == 4

    def test_zero_lookahead_falls_back_inline_with_barrier_windows(self):
        scenario = dataclasses.replace(
            self._scenario(),
            system=SystemConfig(
                num_sites=3,
                num_items=16,
                seed=3,
                engine="parallel",
                engine_workers=2,
                network=NetworkConfig(fixed_delay=0.0, variable_delay=0.02),
            ),
        )
        stats = self._run(scenario).engine_stats
        assert stats["process_fallback"] == "zero-lookahead"
        assert stats["barrier_fallback"] is True

    def test_dynamic_selection_falls_back_inline(self):
        scenario = self._scenario(engine="parallel", engine_workers=2)
        result = self._run(
            dataclasses.replace(scenario, dynamic_selection=True, protocol=None)
        )
        assert result.engine_stats["process_fallback"] == "dynamic-selection"

    def test_trace_hooks_fall_back_inline(self):
        from repro.workload.generator import generate_workload

        scenario = self._scenario(engine="parallel", engine_workers=2)
        database = DistributedDatabase(scenario.system)
        database.simulator.add_trace_hook(lambda *args: None)
        database.load_workload(
            generate_workload(scenario.system, scenario.workload), scenario.workload
        )
        result = database.run()
        assert result.engine_stats["process_fallback"] == "trace-hooks"
        assert result.engine_stats["backend"] == "inline"

    def test_worker_crash_propagates_as_a_typed_error(self, monkeypatch):
        """A dying worker must surface as WorkerCrashError naming its sites
        and window — never a hang, never a bare pipe error."""
        from repro.sim.parallel import process as process_module

        def explode(worker_id, window_index, owned_sites):
            if worker_id == 1 and window_index >= 2:
                raise RuntimeError("injected worker fault")

        monkeypatch.setattr(process_module, "_worker_fault_hook", explode)
        scenario = self._scenario(engine="parallel", engine_workers=2)
        with pytest.raises(process_module.WorkerCrashError) as excinfo:
            self._run(scenario)
        error = excinfo.value
        expected_sites = process_module.assign_sites(scenario.system.num_sites, 2)[1]
        assert error.sites == expected_sites
        assert error.window >= 2
        assert "injected worker fault" in error.detail

    def test_engine_workers_change_the_task_key(self):
        """Inline and multi-process runs must not serve each other from a
        result store, or the identity sweep would compare a row to itself."""
        base = SimulationTask(
            system=SystemConfig(num_sites=3, num_items=16, seed=0, engine="parallel"),
            workload=WorkloadConfig(arrival_rate=25.0, num_transactions=25, seed=1),
            protocol="2PL",
        )
        keys = {
            task_key(
                SimulationTask(
                    system=base.system.with_overrides(engine_workers=workers),
                    workload=base.workload,
                    protocol=base.protocol,
                )
            )
            for workers in (0, 2, 3)
        }
        assert len(keys) == 3

    def _process_tasks(self):
        return [
            SimulationTask(
                system=SystemConfig(
                    num_sites=3,
                    num_items=16,
                    seed=seed,
                    engine="parallel",
                    engine_workers=3,
                ),
                workload=WorkloadConfig(
                    arrival_rate=25.0, num_transactions=25, seed=seed + 1
                ),
                protocol=protocol,
            )
            for seed in (0, 1)
            for protocol in ("2PL", "T/O")
        ]

    def test_process_tasks_identical_across_jobs(self):
        tasks = self._process_tasks()
        assert run_tasks(tasks, jobs=4) == run_tasks(tasks, jobs=1)

    def test_warm_resume_serves_process_tasks_without_executing(
        self, tmp_path, monkeypatch
    ):
        """Cold multi-process runs and a warm store resume are byte-identical,
        and the warm pass never forks a single worker."""
        tasks = self._process_tasks()
        store = ResultStore(tmp_path / "runs.jsonl")
        first = run_tasks(tasks, store=store)

        def explode(task):
            raise AssertionError("a warm re-run must not execute any task")

        monkeypatch.setattr("repro.analysis.replications.execute_task", explode)
        warm_store = ResultStore(store.path)
        again = run_tasks(tasks, store=warm_store, jobs=4)
        assert again == first
        assert warm_store.appended == 0
        assert warm_store.hits == len(tasks)
