"""Unit tests for :class:`repro.live.tcp.TcpTransport`.

Each test boots the smallest cluster that exercises one routing path —
local same-process delivery, cross-process TCP delivery, and the reverse
route a listener-less driver is reached through — on freshly allocated
localhost ports, and always closes the transports so no sockets or tasks
leak into the next test.
"""

from __future__ import annotations

import asyncio
from typing import List

import pytest

from repro.live.cluster import free_ports, local_cluster_map
from repro.live.tcp import LiveTransportError, TcpTransport, site_of_name
from repro.sim.actor import Actor, Message


class Recorder(Actor):
    """An actor that records everything delivered to it."""

    def __init__(self, name: str, site: int) -> None:
        super().__init__(name, site)
        self.received: List[Message] = []

    def handle(self, message: Message) -> None:
        self.received.append(message)


class Echo(Recorder):
    """Records the message and sends an acknowledgement back to its sender."""

    def __init__(self, name: str, site: int, transport: TcpTransport) -> None:
        super().__init__(name, site)
        self.transport = transport

    def handle(self, message: Message) -> None:
        super().handle(message)
        self.transport.send(self, message.sender, f"{message.kind}_ack", message.payload)


async def wait_for(condition, timeout: float = 5.0) -> None:
    """Poll ``condition()`` until true, failing the test on timeout."""
    deadline = asyncio.get_running_loop().time() + timeout
    while not condition():
        if asyncio.get_running_loop().time() > deadline:
            pytest.fail("condition not reached within timeout")
        await asyncio.sleep(0.01)


class TestSiteOfName:
    def test_protocol_actor_names(self) -> None:
        assert site_of_name("ri-0") == 0
        assert site_of_name("cp-2") == 2
        assert site_of_name("qm-17-1") == 1
        assert site_of_name("ctl-3") == 3

    def test_names_without_a_site(self) -> None:
        assert site_of_name("drv") is None
        assert site_of_name("-3") is None
        assert site_of_name("qm-x") is None


class TestTcpTransport:
    def test_requires_running_loop(self) -> None:
        with pytest.raises(LiveTransportError, match="running"):
            TcpTransport("lonely", 0, {0: ("127.0.0.1", 1)})

    def test_local_delivery_preserves_order(self) -> None:
        async def scenario() -> None:
            cluster = local_cluster_map(free_ports(1))
            transport = TcpTransport("site-0", 0, cluster)
            receiver = Recorder("qm-1-0", 0)
            sender = Recorder("ri-0", 0)
            transport.register(receiver)
            transport.register(sender)
            for index in range(5):
                transport.send(sender, "qm-1-0", "request", index)
            await wait_for(lambda: len(receiver.received) == 5)
            assert [m.payload for m in receiver.received] == [0, 1, 2, 3, 4]
            assert transport.local_messages == 5
            assert transport.remote_messages == 0
            assert transport.messages_by_kind() == {"request": 5}
            await transport.close()

        asyncio.run(scenario())

    def test_cross_site_delivery_over_tcp(self) -> None:
        async def scenario() -> None:
            cluster = local_cluster_map(free_ports(2))
            alpha = TcpTransport("site-0", 0, cluster)
            beta = TcpTransport("site-1", 1, cluster)
            await alpha.start_server()
            await beta.start_server()
            remote = Echo("cp-1", 1, beta)
            local = Recorder("ri-0", 0)
            beta.register(remote)
            alpha.register(local)
            alpha.send(local, "cp-1", "prepare", {"round": 1})
            await wait_for(lambda: len(remote.received) == 1)
            # The ack crosses back over a second connection (site-1 dials
            # site-0's listener, since "ri-0" resolves through the map).
            await wait_for(lambda: len(local.received) == 1)
            assert remote.received[0].payload == {"round": 1}
            assert local.received[0].kind == "prepare_ack"
            assert alpha.remote_messages == 1
            assert not alpha.errors and not beta.errors
            await alpha.close()
            await beta.close()

        asyncio.run(scenario())

    def test_reverse_route_to_listener_less_driver(self) -> None:
        async def scenario() -> None:
            cluster = local_cluster_map(free_ports(1))
            daemon = TcpTransport("site-0", 0, cluster)
            await daemon.start_server()
            driver = TcpTransport("driver", None, cluster)
            control = Echo("ctl-0", 0, daemon)
            daemon.register(control)
            probe = Recorder("drv", -1)
            driver.register(probe)
            # "drv" resolves to no site; the daemon must answer over the
            # connection the hello arrived on.
            driver.send(probe, "ctl-0", "hello", "ping")
            await wait_for(lambda: len(probe.received) == 1)
            assert probe.received[0].kind == "hello_ack"
            assert probe.received[0].payload == "ping"
            await driver.close()
            await daemon.close()

        asyncio.run(scenario())

    def test_reply_before_route_is_buffered_not_dropped(self) -> None:
        async def scenario() -> None:
            cluster = local_cluster_map(free_ports(1))
            daemon = TcpTransport("site-0", 0, cluster)
            await daemon.start_server()
            anchor = Recorder("ctl-0", 0)
            daemon.register(anchor)
            # Send to an unknown listener-less name before any route exists:
            # the frame must wait in the pending buffer, then flush when the
            # peer's first frame teaches the daemon the way back.
            daemon.send(anchor, "drv", "audit_entry", ("early", 1))
            driver = TcpTransport("driver", None, cluster)
            probe = Recorder("drv", -1)
            driver.register(probe)
            driver.send(probe, "ctl-0", "hello", None)
            await wait_for(lambda: len(probe.received) == 1)
            assert probe.received[0].kind == "audit_entry"
            assert probe.received[0].payload == ("early", 1)
            assert daemon.messages_dropped == 0
            await driver.close()
            await daemon.close()

        asyncio.run(scenario())

    def test_handler_errors_are_captured_for_the_supervisor(self) -> None:
        async def scenario() -> None:
            cluster = local_cluster_map(free_ports(1))
            transport = TcpTransport("site-0", 0, cluster)

            class Exploding(Actor):
                def handle(self, message: Message) -> None:
                    raise RuntimeError("boom")

            transport.register(Exploding("qm-1-0", 0))
            sender = Recorder("ri-0", 0)
            transport.register(sender)
            transport.send(sender, "qm-1-0", "request", None)
            await wait_for(lambda: bool(transport.errors))
            with pytest.raises(RuntimeError, match="boom"):
                transport.raise_errors()
            await transport.close()

        asyncio.run(scenario())

    def test_schedule_runs_and_cancels(self) -> None:
        async def scenario() -> None:
            cluster = local_cluster_map(free_ports(1))
            transport = TcpTransport("site-0", 0, cluster)
            fired: List[str] = []
            transport.schedule(0.01, lambda: fired.append("ran"))
            cancelled = transport.schedule(0.01, lambda: fired.append("cancelled"))
            cancelled.cancel()
            await asyncio.sleep(0.05)
            assert fired == ["ran"]
            await transport.close()

        asyncio.run(scenario())

    def test_send_after_close_is_refused(self) -> None:
        async def scenario() -> None:
            cluster = local_cluster_map(free_ports(1))
            transport = TcpTransport("site-0", 0, cluster)
            sender = Recorder("ri-0", 0)
            transport.register(sender)
            await transport.close()
            with pytest.raises(LiveTransportError, match="closed"):
                transport.send(sender, "ri-0", "request", None)

        asyncio.run(scenario())
