"""Flake guards for the live-mode tests.

Real sockets and wall-clock timers make live tests the flakiest kind in
any suite, so every test here goes through fixtures that (a) allocate
genuinely free localhost ports per test, (b) supervise the in-process
daemon lifecycle so a crashed site fails the test instead of wedging it,
and (c) convert timeouts into assertion failures carrying the captured
per-site state — never a silently hanging pytest process.
"""

from __future__ import annotations

import asyncio
from dataclasses import replace
from typing import List, Optional, Sequence

import pytest

from repro.common.config import SystemConfig
from repro.common.transactions import TransactionSpec
from repro.live.cluster import (
    InProcessCluster,
    free_ports,
    live_setup,
    local_cluster_map,
)
from repro.live.driver import LiveDriver, LiveRunError, LiveRunResult

#: Hard wall-clock ceiling for one in-process live run.  Generous next to
#: the observed few-second runs, but small enough that a wedged cluster
#: fails the suite instead of eating the CI job's whole timeout.
HARD_TIMEOUT = 120.0


def tuned(system: SystemConfig) -> SystemConfig:
    """Shrink the wall-clock knobs so live tests run in seconds.

    The simulator's defaults (1 s PA back-off quantum, 50 ms restart
    delay) are simulated-time units, but in live mode they are real
    seconds on the event loop.  Equivalence is unaffected — the *same*
    tuned system is handed to both the simulator and the live cluster.
    """
    return system.with_overrides(
        io_time=0.001,
        restart_delay=0.01,
        pa_backoff_interval=0.05,
        commit=replace(system.commit, prepare_timeout=0.5),
    )


def small_workload(
    scenario: str = "uniform-baseline",
    *,
    transactions: int = 20,
    commit: str = "two-phase",
):
    """A registered scenario resolved for live mode and tuned for speed."""
    system, specs = live_setup(scenario, transactions=transactions, commit=commit)
    return tuned(system), specs


@pytest.fixture
def ports():
    """Allocate free localhost ports: ``ports(n) -> tuple of n ports``."""
    return free_ports


@pytest.fixture
def live_run():
    """Run specs against a supervised in-process cluster, or fail loudly.

    Returns a callable ``run(system, specs, **driver_options)`` that boots
    one daemon per site on fresh ports, drives the workload, and tears the
    cluster down.  On any timeout or driver error the test fails with the
    captured per-site errors and daemon status instead of hanging.
    """

    def run(
        system: SystemConfig,
        specs: Sequence[TransactionSpec],
        *,
        request_timeout: float = 2.0,
        hard_timeout: float = HARD_TIMEOUT,
        **driver_options,
    ) -> LiveRunResult:
        driver_options.setdefault("compute_scale", 0.1)
        driver_options.setdefault("drain_timeout", hard_timeout)

        async def _run() -> LiveRunResult:
            cluster = local_cluster_map(free_ports(system.num_sites))
            async with InProcessCluster(
                system, cluster, request_timeout=request_timeout
            ) as supervisor:
                driver = LiveDriver(system, cluster, specs, **driver_options)
                try:
                    return await asyncio.wait_for(driver.run(), timeout=hard_timeout)
                except (LiveRunError, asyncio.TimeoutError) as error:
                    statuses = [
                        {"site": daemon.site, **daemon.status()}
                        for daemon in supervisor.daemons
                    ]
                    pytest.fail(
                        f"live run did not complete: {error!r}\n"
                        f"daemon status: {statuses}\n"
                        f"site errors: {supervisor.site_errors()}"
                    )

        return asyncio.run(_run())

    return run


def run_sim(system: SystemConfig, specs: Optional[List[TransactionSpec]] = None):
    """Run the same specs through the plain simulator, for differentials."""
    from repro.system.database import DistributedDatabase

    database = DistributedDatabase(system)
    database.load_workload(list(specs or []))
    return database.run()


@pytest.fixture
def workload():
    """Factory fixture over :func:`small_workload` (tuned live scenarios)."""
    return small_workload


@pytest.fixture
def sim_run():
    """Factory fixture over :func:`run_sim` (the simulator half)."""
    return run_sim


@pytest.fixture
def tuned_system():
    """Factory fixture over :func:`tuned` (wall-clock knob shrinking)."""
    return tuned
