"""Property tests for the live wire codec and the frozen message envelope.

The codec's contract is stronger than "decode(encode(x)) == x": re-encoding
the decoded message must reproduce the original frame *byte for byte*, and
the incremental :class:`~repro.live.wire.FrameDecoder` must tolerate the
stream being split at any byte boundary — exactly what a TCP receiver sees.
Hypothesis drives both properties over the full set of registered payload
types (ids, requests, commit messages, specs, tuples, and dicts keyed by
non-string values such as ``CopyId``).
"""

from __future__ import annotations

import json
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.commit.messages import (
    AckMessage,
    DecisionMessage,
    PeerQuery,
    PeerReply,
    PrepareRequest,
    StatusQuery,
    StatusReply,
    VoteMessage,
)
from repro.common.ids import CopyId, RequestId, TransactionId
from repro.common.operations import LogicalOperation, OperationType, PhysicalOperation
from repro.common.protocol_names import Protocol
from repro.common.transactions import TransactionSpec
from repro.core.effects import BackoffIssued, GrantIssued, RequestRejected
from repro.core.locks import LockMode
from repro.core.requests import Request
from repro.live.wire import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    WireError,
    decode_frame_body,
    encode_message,
)
from repro.sim.actor import Message
from repro.storage.log import CommitDecision, LogEntry

# ---------------------------------------------------------------------------
# Strategies over the registered wire types
# ---------------------------------------------------------------------------

finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)
small_text = st.text(max_size=12)
names = st.text(min_size=1, max_size=16)

tids = st.builds(TransactionId, site=st.integers(0, 7), seq=st.integers(0, 999))
copies = st.builds(CopyId, item=st.integers(0, 63), site=st.integers(0, 7))
request_ids = st.builds(
    RequestId, transaction=tids, index=st.integers(0, 9), attempt=st.integers(0, 4)
)
protocols = st.sampled_from(list(Protocol))
op_types = st.sampled_from(list(OperationType))
lock_modes = st.sampled_from(list(LockMode))
decisions = st.sampled_from(list(CommitDecision))

requests = st.builds(
    Request,
    request_id=request_ids,
    transaction=tids,
    protocol=protocols,
    op_type=op_types,
    copy=copies,
    timestamp=finite_floats,
    backoff_interval=finite_floats,
    issuer=small_text,
)

grants = st.builds(
    GrantIssued,
    request=requests,
    mode=lock_modes,
    normal=st.booleans(),
    time=finite_floats,
)

effects = st.one_of(
    grants,
    st.builds(BackoffIssued, request=requests, new_timestamp=finite_floats, time=finite_floats),
    st.builds(RequestRejected, request=requests, time=finite_floats, reason=small_text),
)

#: Values a frame payload may carry, including nested containers and dicts
#: whose keys are dataclasses (the ``writes: Dict[CopyId, Any]`` case).
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(2**31), 2**31),
    finite_floats,
    small_text,
    tids,
    copies,
    request_ids,
    protocols,
    op_types,
    lock_modes,
    decisions,
)
values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.tuples(children, children),
        st.lists(children, max_size=3),
        st.dictionaries(st.one_of(small_text, copies, tids), children, max_size=3),
    ),
    max_leaves=8,
)

# TransactionSpec validates itself (non-empty access set, non-negative
# times), so the strategy only generates legal specs.
non_negative = st.floats(min_value=0.0, allow_nan=False, allow_infinity=False)
specs = st.builds(
    TransactionSpec,
    tid=tids,
    read_items=st.tuples(st.integers(0, 63)),
    write_items=st.tuples(st.integers(0, 63)),
    compute_time=non_negative,
    protocol=st.one_of(st.none(), protocols),
    arrival_time=non_negative,
)

prepares = st.builds(
    PrepareRequest,
    transaction=tids,
    attempt=st.integers(0, 4),
    coordinator=names,
    requests=st.tuples(requests),
    writes=st.dictionaries(copies, values, max_size=3),
    participants=st.tuples(st.integers(0, 7)),
    force_log=st.booleans(),
    ack_decision=st.one_of(st.none(), decisions),
)

attempts = st.integers(0, 4)
sites = st.integers(0, 7)
commit_messages = st.one_of(
    prepares,
    st.builds(VoteMessage, transaction=tids, attempt=attempts, site=sites, commit=st.booleans()),
    st.builds(DecisionMessage, transaction=tids, attempt=attempts, decision=decisions),
    st.builds(StatusQuery, transaction=tids, attempt=attempts, reply_to=names),
    st.builds(StatusReply, transaction=tids, attempt=attempts, decision=decisions),
    st.builds(PeerQuery, transaction=tids, attempt=attempts, reply_to=names),
    st.builds(
        PeerReply,
        transaction=tids,
        attempt=attempts,
        decision=st.one_of(st.none(), decisions),
        site=sites,
    ),
    st.builds(AckMessage, transaction=tids, attempt=attempts, site=sites),
)

payloads = st.one_of(
    values,
    requests,
    effects,
    specs,
    commit_messages,
    st.builds(LogicalOperation, op_type=op_types, item=st.integers(0, 63)),
    st.builds(PhysicalOperation, op_type=op_types, copy=copies),
    st.builds(
        LogEntry,
        copy=copies,
        transaction=tids,
        op_type=op_types,
        protocol=protocols,
        time=finite_floats,
        attempt=st.integers(0, 4),
    ),
)

messages = st.builds(
    Message,
    kind=names,
    sender=names,
    receiver=names,
    payload=payloads,
    send_time=finite_floats,
    metadata=st.dictionaries(small_text, scalars, max_size=3),
)


def assert_same_message(left: Message, right: Message) -> None:
    """Field-wise envelope equality (metadata is a read-only view)."""
    assert left.kind == right.kind
    assert left.sender == right.sender
    assert left.receiver == right.receiver
    assert left.payload == right.payload
    assert left.send_time == right.send_time
    assert dict(left.metadata) == dict(right.metadata)


class TestRoundTrip:
    @given(message=messages)
    @settings(max_examples=200, deadline=None)
    def test_round_trip_is_byte_identical(self, message: Message) -> None:
        frame = encode_message(message)
        decoded = decode_frame_body(frame[4:])
        assert_same_message(decoded, message)
        assert encode_message(decoded) == frame

    @given(batch=st.lists(messages, min_size=1, max_size=4), data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_decoder_accepts_any_byte_boundary(self, batch, data) -> None:
        stream = b"".join(encode_message(message) for message in batch)
        cuts = sorted(
            data.draw(
                st.lists(st.integers(0, len(stream)), max_size=8, unique=True)
            )
        )
        decoder = FrameDecoder()
        received = []
        previous = 0
        for cut in [*cuts, len(stream)]:
            received.extend(decoder.feed(stream[previous:cut]))
            previous = cut
        decoder.check_eof()
        assert len(received) == len(batch)
        for got, sent in zip(received, batch):
            assert_same_message(got, sent)

    @given(message=messages)
    @settings(max_examples=50, deadline=None)
    def test_one_byte_at_a_time(self, message: Message) -> None:
        frame = encode_message(message)
        decoder = FrameDecoder()
        received = []
        for index in range(len(frame)):
            received.extend(decoder.feed(frame[index : index + 1]))
        decoder.check_eof()
        assert len(received) == 1
        assert_same_message(received[0], message)


class TestMalformedFrames:
    def test_truncated_frame_reported_at_eof(self) -> None:
        frame = encode_message(Message("kind", "a", "b"))
        decoder = FrameDecoder()
        assert decoder.feed(frame[:-1]) == []
        with pytest.raises(WireError, match="mid-frame"):
            decoder.check_eof()

    def test_truncated_length_prefix_reported_at_eof(self) -> None:
        decoder = FrameDecoder()
        assert decoder.feed(b"\x00\x00") == []
        with pytest.raises(WireError, match="mid-frame"):
            decoder.check_eof()

    def test_oversized_length_prefix_rejected_before_body(self) -> None:
        decoder = FrameDecoder()
        with pytest.raises(WireError, match="exceeds"):
            decoder.feed(struct.pack(">I", MAX_FRAME_BYTES + 1))

    def test_invalid_json_body(self) -> None:
        with pytest.raises(WireError, match="JSON"):
            decode_frame_body(b"{not json")

    def test_non_utf8_body(self) -> None:
        with pytest.raises(WireError, match="JSON"):
            decode_frame_body(b"\xff\xfe")

    def test_non_object_body(self) -> None:
        with pytest.raises(WireError, match="object"):
            decode_frame_body(b"[1,2,3]")

    def test_missing_envelope_field(self) -> None:
        with pytest.raises(WireError, match="kind"):
            decode_frame_body(b'{"sender":"a","receiver":"b"}')

    def test_unknown_tag_rejected(self) -> None:
        body = json.dumps(
            {
                "kind": "k",
                "sender": "a",
                "receiver": "b",
                "payload": {"__t": "EvilClass", "v": {}},
            }
        ).encode()
        with pytest.raises(WireError, match="unknown wire tag"):
            decode_frame_body(body)

    def test_wrong_dataclass_fields_rejected(self) -> None:
        body = json.dumps(
            {
                "kind": "k",
                "sender": "a",
                "receiver": "b",
                "payload": {"__t": "TransactionId", "v": {"bogus": 1}},
            }
        ).encode()
        with pytest.raises(WireError, match="TransactionId"):
            decode_frame_body(body)

    def test_tag_without_value_rejected(self) -> None:
        body = json.dumps(
            {"kind": "k", "sender": "a", "receiver": "b", "payload": {"__t": "tuple"}}
        ).encode()
        with pytest.raises(WireError, match="__t/v"):
            decode_frame_body(body)

    def test_spec_with_logic_refused(self) -> None:
        spec = TransactionSpec(
            tid=TransactionId(site=0, seq=1),
            read_items=(1,),
            write_items=(2,),
            logic=lambda reads: {},
        )
        with pytest.raises(WireError, match="logic"):
            encode_message(Message("submit", "drv", "ri-0", payload=spec))

    def test_non_finite_float_refused(self) -> None:
        with pytest.raises(WireError, match="non-finite"):
            encode_message(Message("k", "a", "b", payload=float("inf")))
        with pytest.raises(WireError, match="non-finite"):
            encode_message(Message("k", "a", "b", payload=float("nan")))

    def test_unregistered_type_refused(self) -> None:
        class NotOnTheWire:
            pass

        with pytest.raises(WireError, match="not wire-encodable"):
            encode_message(Message("k", "a", "b", payload=NotOnTheWire()))


class TestMessageEnvelope:
    """Regression tests for the shared-mutable ``Message`` hazard.

    One envelope may be held by the transport queue, a trace hook, the
    receiving actor and (live mode) an outbound frame encoder at once; the
    fix froze the dataclass and made ``metadata`` a defensive read-only
    copy so no holder can change what the others observe.
    """

    def test_fields_are_frozen(self) -> None:
        message = Message("k", "a", "b", payload=1)
        with pytest.raises(AttributeError):
            message.kind = "other"
        with pytest.raises(AttributeError):
            message.payload = 2

    def test_metadata_view_is_read_only(self) -> None:
        message = Message("k", "a", "b", metadata={"hop": 1})
        with pytest.raises(TypeError):
            message.metadata["hop"] = 2

    def test_metadata_is_defensively_copied(self) -> None:
        source = {"hop": 1}
        message = Message("k", "a", "b", metadata=source)
        source["hop"] = 99
        source["extra"] = True
        assert dict(message.metadata) == {"hop": 1}
