"""The differential harness: the simulator vs. a real networked cluster.

The same registered scenario — same system configuration, same generated
transaction specs — is run once through the discrete-event simulator and
once against an in-process cluster of site daemons talking real TCP over
localhost.  The two executions must agree on everything the paper's
correctness claims rest on:

* the *set* of committed transactions (timing may reorder restarts, so
  attempt counts can differ; the committed set cannot),
* the audit verdicts — conflict-serializable and replica-convergent,
* 2PC safety: across every site's commit log, each ``(transaction,
  attempt)`` round carries exactly one decision.
"""

from __future__ import annotations

import pytest

from repro.common.config import SystemConfig
from repro.common.errors import ConfigurationError
from repro.live.daemon import LiveConfigError, live_system
from repro.workload import scenarios as scenario_registry
from repro.workload.scenarios import Scenario


class TestDifferentialEquivalence:
    def test_sim_and_live_agree_on_uniform_baseline(self, live_run, workload, sim_run) -> None:
        system, specs = workload("uniform-baseline", transactions=20)
        sim = sim_run(system, specs)
        live = live_run(system, specs)

        assert live.submitted == len(specs)
        # Identical committed-transaction sets.
        assert set(live.committed_attempts) == set(sim.committed_attempts)
        assert live.committed == sim.committed
        # Identical audit verdicts.
        assert sim.serializable and live.serializable
        assert sim.atomic and live.atomic
        # 2PC decision uniqueness across every site's log.
        assert live.conflicting_decisions() == ()
        # The live run really exchanged protocol traffic over the wire.
        assert live.protocol_messages > 0
        assert live.duration > 0.0

    def test_equivalence_holds_under_presumed_abort(self, live_run, workload, sim_run) -> None:
        system, specs = workload(
            "uniform-baseline", transactions=12, commit="presumed-abort"
        )
        sim = sim_run(system, specs)
        live = live_run(system, specs)
        assert set(live.committed_attempts) == set(sim.committed_attempts)
        assert sim.serializable and live.serializable
        assert sim.atomic and live.atomic
        assert live.conflicting_decisions() == ()

    def test_e12_experiment_reports_equivalence(self) -> None:
        from repro.analysis.experiments import sim_live_equivalence

        rows = sim_live_equivalence("uniform-baseline", transactions=10)
        assert [row["mode"] for row in rows] == ["sim", "live", "equal"]
        sim_row, live_row, verdict = rows
        assert sim_row["committed_set_digest"] == live_row["committed_set_digest"]
        assert verdict["equivalent"]
        assert sim_row["serializable"] and live_row["serializable"]
        assert live_row["conflicting_2pc_decisions"] == 0


class TestLiveConfigurationGuards:
    def test_one_phase_commit_is_rejected(self) -> None:
        # The implicit one-phase commit has no prepare/vote exchange to run
        # over a real network; live mode refuses it instead of silently
        # running something weaker than the simulator models.
        with pytest.raises(LiveConfigError, match="one-phase"):
            live_system(SystemConfig())

    def test_fault_injection_is_stripped(self) -> None:
        from dataclasses import replace

        from repro.common.config import FaultConfig

        system = SystemConfig()
        system = replace(
            system,
            commit=replace(system.commit, protocol="two-phase"),
            faults=FaultConfig(crash_rate=0.5, horizon=10.0),
        )
        assert live_system(system).faults is None

    def test_dynamic_selection_scenario_is_rejected(self, monkeypatch) -> None:
        from repro.live.cluster import live_setup

        base = scenario_registry.get_scenario("uniform-baseline")
        dynamic = Scenario(
            name="test-dynamic-live",
            description="registry entry used only by this test",
            system=base.system,
            workload=base.workload,
            dynamic_selection=True,
        )
        monkeypatch.setitem(scenario_registry._REGISTRY, dynamic.name, dynamic)
        with pytest.raises(ConfigurationError, match="dynamic"):
            live_setup(dynamic.name, transactions=5)


class TestTunedSystem:
    def test_tuning_changes_only_wall_clock_knobs(self, workload, tuned_system) -> None:
        system, _ = workload("uniform-baseline", transactions=5)
        baseline = tuned_system(system)
        assert baseline.num_sites == system.num_sites
        assert baseline.replication_factor == system.replication_factor
        assert baseline.commit.protocol == "two-phase"
