"""Result store: round-trip fidelity, crash tolerance and cache accounting."""

import json

import pytest

from repro.analysis.replications import SimulationTask, run_tasks
from repro.common.config import SystemConfig, WorkloadConfig
from repro.store import ResultStore, StoreError, task_key, task_payload

SUMMARY = {
    "committed": 10,
    "mean_system_time": 0.123456789,
    "throughput": 9.87,
    "serializable": True,
    "protocol_stats": {"2PL": {"restarts": 0.0}},
}


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "runs.jsonl")


@pytest.fixture(scope="module")
def tiny_tasks():
    system = SystemConfig(num_sites=2, num_items=16, seed=1)
    workload = WorkloadConfig(
        arrival_rate=25.0, num_transactions=8, min_size=1, max_size=3, seed=2
    )
    return [
        SimulationTask(system=system, workload=workload, protocol=protocol)
        for protocol in ("2PL", "T/O", "PA")
    ]


class TestRoundTrip:
    def test_put_then_get(self, store):
        store.put("k1", {"protocol": "2PL"}, SUMMARY)
        assert store.get("k1") == SUMMARY
        assert "k1" in store
        assert len(store) == 1

    def test_survives_reopen(self, store):
        store.put("k1", {"protocol": "2PL"}, SUMMARY)
        reopened = ResultStore(store.path)
        assert reopened.get("k1") == SUMMARY
        assert reopened.keys() == ("k1",)

    def test_floats_round_trip_exactly(self, store):
        summary = {"value": 0.1 + 0.2, "tiny": 5e-324, "big": 1.7976931348623157e308}
        store.put("k1", {}, summary)
        assert ResultStore(store.path).get("k1") == summary

    def test_last_write_wins(self, store):
        store.put("k1", {}, {"committed": 1})
        store.put("k1", {}, {"committed": 2})
        assert store.get("k1") == {"committed": 2}
        reopened = ResultStore(store.path)
        assert reopened.get("k1") == {"committed": 2}
        assert len(reopened) == 1

    def test_returned_summaries_are_isolated_copies(self, store):
        store.put("k1", {}, SUMMARY)
        first = store.get("k1")
        first["committed"] = -1
        first["protocol_stats"]["2PL"]["restarts"] = -1
        assert store.get("k1") == SUMMARY

    def test_non_json_summaries_are_rejected(self, store):
        with pytest.raises(StoreError):
            store.put("k1", {}, {"bad": object()})
        with pytest.raises(StoreError):
            store.put("k1", {}, {"bad": float("nan")})

    def test_tuples_are_rejected_not_silently_mangled(self, store):
        with pytest.raises(StoreError):
            store.put("k1", {}, {"witness": (1, 2, 3)})


class TestCrashTolerance:
    def test_truncated_final_line_is_skipped(self, store):
        store.put("k1", {}, {"committed": 1})
        store.put("k2", {}, {"committed": 2})
        raw = store.path.read_bytes()
        # Simulate a SIGKILL mid-append: half of the second record survives.
        cut = raw.rfind(b'{"schema"') + 25
        store.path.write_bytes(raw[:cut])
        survivor = ResultStore(store.path)
        assert survivor.get("k1") == {"committed": 1}
        assert "k2" not in survivor
        assert survivor.corrupt_lines == 1

    def test_append_after_truncation_heals_the_file(self, store):
        store.put("k1", {}, {"committed": 1})
        store.path.write_bytes(store.path.read_bytes()[:-9])  # drop the tail
        healed = ResultStore(store.path)
        healed.put("k2", {}, {"committed": 2})
        final = ResultStore(healed.path)
        assert final.get("k2") == {"committed": 2}
        assert final.corrupt_lines == 1  # the truncated k1 stays unparseable

    def test_foreign_garbage_lines_are_counted_and_ignored(self, store):
        store.put("k1", {}, {"committed": 1})
        with store.path.open("a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write(json.dumps({"schema": 999, "key": "x", "summary": {}}) + "\n")
        reopened = ResultStore(store.path)
        assert reopened.get("k1") == {"committed": 1}
        assert reopened.corrupt_lines == 2

    def test_missing_and_empty_files_load_clean(self, tmp_path):
        assert len(ResultStore(tmp_path / "absent.jsonl")) == 0
        (tmp_path / "empty.jsonl").touch()
        assert len(ResultStore(tmp_path / "empty.jsonl")) == 0


class TestRunTasksAccounting:
    def test_cold_store_counts_all_misses(self, store, tiny_tasks):
        summaries = run_tasks(tiny_tasks, store=store)
        assert store.misses == len(tiny_tasks)
        assert store.hits == 0
        assert store.appended == len(tiny_tasks)
        assert len(store) == len(tiny_tasks)
        assert [s["committed"] for s in summaries] == [8, 8, 8]

    def test_warm_store_counts_all_hits_and_runs_nothing(self, store, tiny_tasks, monkeypatch):
        run_tasks(tiny_tasks, store=store)
        warm = ResultStore(store.path)

        def explode(task):
            raise AssertionError("warm store must not execute any simulation task")

        monkeypatch.setattr("repro.analysis.replications.execute_task", explode)
        summaries = run_tasks(tiny_tasks, store=warm, jobs=2)
        assert warm.hits == len(tiny_tasks)
        assert warm.misses == 0
        assert warm.appended == 0
        assert [s["committed"] for s in summaries] == [8, 8, 8]

    def test_partial_store_only_runs_the_missing_tasks(self, store, tiny_tasks):
        run_tasks(tiny_tasks[:1], store=store)
        executed = []
        resumed = ResultStore(store.path)
        summaries = run_tasks(tiny_tasks, store=resumed)
        executed = resumed.appended
        assert resumed.hits == 1
        assert resumed.misses == 2
        assert executed == 2
        assert summaries == run_tasks(tiny_tasks)

    def test_force_reexecutes_and_appends(self, store, tiny_tasks):
        run_tasks(tiny_tasks, store=store)
        forced = ResultStore(store.path)
        summaries = run_tasks(tiny_tasks, store=forced, force=True)
        assert forced.forced == len(tiny_tasks)
        assert forced.hits == 0
        assert forced.appended == len(tiny_tasks)
        assert summaries == run_tasks(tiny_tasks)
        # The file now holds two records per key but still one entry each.
        assert len(ResultStore(store.path)) == len(tiny_tasks)

    def test_store_backed_summaries_equal_fresh_ones(self, store, tiny_tasks):
        fresh = run_tasks(tiny_tasks)
        cached_cold = run_tasks(tiny_tasks, store=store)
        cached_warm = run_tasks(tiny_tasks, store=ResultStore(store.path))
        assert cached_cold == fresh
        assert cached_warm == fresh

    def test_parallel_store_backed_run_matches_serial(self, store, tiny_tasks):
        serial = run_tasks(tiny_tasks)
        parallel = run_tasks(tiny_tasks, store=store, jobs=3)
        assert parallel == serial

    def test_report_mentions_counts_and_path(self, store, tiny_tasks):
        run_tasks(tiny_tasks, store=store)
        report = store.report()
        assert "0 reused" in report
        assert "3 executed" in report
        assert str(store.path) in report


class TestStoredEntries:
    def test_entries_carry_the_task_payload(self, store, tiny_tasks):
        run_tasks(tiny_tasks[:1], store=store)
        (entry,) = list(store.entries())
        assert entry["key"] == task_key(tiny_tasks[0])
        assert entry["task"] == task_payload(tiny_tasks[0])
        assert entry["task"]["protocol"] == "2PL"
        assert entry["summary"]["committed"] == 8
