"""Content-addressed task keys: determinism and sensitivity."""

import pytest

from repro.analysis.replications import SimulationTask
from repro.common.config import (
    CommitConfig,
    CoordinatorCrash,
    DriftConfig,
    DriftSegment,
    FaultConfig,
    ProtocolMix,
    SiteCrash,
    SystemConfig,
    WorkloadConfig,
)
from repro.common.protocol_names import Protocol
from repro.store import ResultStore, canonical_value, task_key, task_payload
from repro.workload.scenarios import get_scenario


@pytest.fixture(scope="module")
def base_task():
    return SimulationTask(
        system=SystemConfig(num_sites=2, num_items=16, seed=3),
        workload=WorkloadConfig(arrival_rate=20.0, num_transactions=10, seed=4),
        protocol="2PL",
    )


class TestTaskKey:
    def test_deterministic_across_calls(self, base_task):
        assert task_key(base_task) == task_key(base_task)

    def test_equal_tasks_share_a_key(self, base_task):
        clone = SimulationTask(
            system=SystemConfig(num_sites=2, num_items=16, seed=3),
            workload=WorkloadConfig(arrival_rate=20.0, num_transactions=10, seed=4),
            protocol="2PL",
        )
        assert task_key(clone) == task_key(base_task)

    def test_protocol_spelling_does_not_matter(self, base_task):
        spelled = SimulationTask(
            system=base_task.system,
            workload=base_task.workload,
            protocol=Protocol.TWO_PHASE_LOCKING,
        )
        assert task_key(spelled) == task_key(base_task)

    @pytest.mark.parametrize(
        "override",
        [
            {"seed": 99},
            {"num_items": 17},
            {"restart_delay": 0.5},
            {"protocol_switch_threshold": 2},
            {"engine": "parallel", "engine_workers": 2},
        ],
    )
    def test_system_changes_change_the_key(self, base_task, override):
        changed = SimulationTask(
            system=base_task.system.with_overrides(**override),
            workload=base_task.workload,
            protocol=base_task.protocol,
        )
        assert task_key(changed) != task_key(base_task)

    @pytest.mark.parametrize(
        "override",
        [
            {"seed": 99},
            {"arrival_rate": 21.0},
            {"num_transactions": 11},
            {"protocol_mix": ProtocolMix.pure(Protocol.PRECEDENCE_AGREEMENT)},
        ],
    )
    def test_workload_changes_change_the_key(self, base_task, override):
        changed = SimulationTask(
            system=base_task.system,
            workload=base_task.workload.with_overrides(**override),
            protocol=base_task.protocol,
        )
        assert task_key(changed) != task_key(base_task)

    def test_mode_changes_change_the_key(self, base_task):
        mixed = SimulationTask(system=base_task.system, workload=base_task.workload)
        dynamic = SimulationTask(
            system=base_task.system, workload=base_task.workload, dynamic_selection=True
        )
        keys = {task_key(base_task), task_key(mixed), task_key(dynamic)}
        assert len(keys) == 3

    def test_protocol_mix_weight_order_does_not_matter(self, base_task):
        forward = ProtocolMix(
            {Protocol.TWO_PHASE_LOCKING: 1.0, Protocol.TIMESTAMP_ORDERING: 2.0}
        )
        backward = ProtocolMix(
            {Protocol.TIMESTAMP_ORDERING: 2.0, Protocol.TWO_PHASE_LOCKING: 1.0}
        )
        first = SimulationTask(
            system=base_task.system,
            workload=base_task.workload.with_overrides(protocol_mix=forward),
        )
        second = SimulationTask(
            system=base_task.system,
            workload=base_task.workload.with_overrides(protocol_mix=backward),
        )
        assert task_key(first) == task_key(second)


def _adaptive_drift_task() -> SimulationTask:
    """A fully pinned E9-style task: drifting workload + adaptive selection."""
    return SimulationTask(
        system=SystemConfig(num_sites=2, num_items=16, seed=3),
        workload=WorkloadConfig(
            arrival_rate=20.0,
            num_transactions=10,
            drift=DriftConfig(
                mode="smooth",
                segments=(
                    DriftSegment(at=0.3, hotspot_probability=0.6, hotspot_center=0.2),
                    DriftSegment(at=0.7, hotspot_center=0.8),
                ),
            ),
            seed=4,
        ),
        dynamic_selection=True,
        selection_mode="adaptive",
    )


class TestAdaptiveDriftKeys:
    """E9 configurations must key distinctly and stably."""

    #: Golden digest of ``_adaptive_drift_task()``.  If this assertion ever
    #: fails, the canonical task encoding changed: bump ``KEY_SCHEMA`` so
    #: stale stores invalidate themselves, then re-pin.  (Re-pinned for
    #: KEY_SCHEMA v7: the ``engine_workers`` field joined ``SystemConfig``.)
    GOLDEN_KEY = "bdd72e9e6d7c1b2c76d6a52f6583ccfd1b4ceeaef021e17c11315b3a98bf6ce5"

    def test_adaptive_drift_key_is_stable_across_processes(self):
        assert task_key(_adaptive_drift_task()) == self.GOLDEN_KEY

    def test_selection_modes_key_distinctly(self):
        base = _adaptive_drift_task()
        keys = {
            task_key(
                SimulationTask(
                    system=base.system,
                    workload=base.workload,
                    dynamic_selection=True,
                    selection_mode=mode,
                )
            )
            for mode in (None, "cumulative", "adaptive", "frozen")
        }
        assert len(keys) == 4

    def test_drift_schedule_changes_the_key(self):
        base = _adaptive_drift_task()
        stationary = SimulationTask(
            system=base.system,
            workload=base.workload.with_overrides(drift=None),
            dynamic_selection=True,
            selection_mode="adaptive",
        )
        assert task_key(stationary) != task_key(base)

    def test_drift_segment_values_change_the_key(self):
        base = _adaptive_drift_task()
        nudged = SimulationTask(
            system=base.system,
            workload=base.workload.with_overrides(
                drift=DriftConfig(
                    mode="smooth",
                    segments=(
                        DriftSegment(at=0.3, hotspot_probability=0.7, hotspot_center=0.2),
                        DriftSegment(at=0.7, hotspot_center=0.8),
                    ),
                )
            ),
            dynamic_selection=True,
            selection_mode="adaptive",
        )
        assert task_key(nudged) != task_key(base)

    def test_drift_payload_round_trips_through_json(self):
        import json

        payload = task_payload(_adaptive_drift_task())
        assert json.loads(json.dumps(payload)) == payload

    def test_registered_drift_scenarios_key_distinctly_per_mode(self):
        keys = set()
        for name in ("hotspot-migration", "mix-flip", "load-ramp"):
            scenario = get_scenario(name)
            for mode in ("adaptive", "frozen"):
                keys.add(
                    task_key(
                        SimulationTask(
                            system=scenario.system,
                            workload=scenario.workload,
                            dynamic_selection=True,
                            selection_mode=mode,
                        )
                    )
                )
        assert len(keys) == 6


class TestCommitFaultKeys:
    """Key-schema v4: the commit layer and fault model are part of every digest."""

    #: Golden v7 digest of the module fixture's ``base_task`` (all-default
    #: commit/fault/audit/engine configuration).  Byte-stability of the new
    #: defaults: if this ever fails, the canonical encoding moved again —
    #: bump ``KEY_SCHEMA`` and re-pin.
    GOLDEN_DEFAULT_KEY = "72728a73fedbcf77ff30dee85a0a191bd99a9c139cb32b815a5b868a48352840"

    #: A KEY_SCHEMA v2 digest (the adaptive-drift golden this file pinned
    #: before the v3 schema bump).  Kept to prove that rows addressed by
    #: old-era keys stay inert under v4 lookups.
    V2_ERA_KEY = "06a8cfeac052da4dc0e4fc617039b75ad3b20c829d5429acca0a84dfc22ffd03"

    def test_default_commit_fault_config_is_byte_stable(self, base_task):
        assert task_key(base_task) == self.GOLDEN_DEFAULT_KEY

    def test_default_payload_names_commit_and_faults(self, base_task):
        payload = task_payload(base_task)
        assert payload["schema"] == 7
        assert payload["system"]["commit"] == {
            "protocol": "one-phase",
            "prepare_timeout": 1.0,
            "termination_protocol": False,
            "termination_timeout": 1.0,
            "termination_backoff": 2.0,
            "checkpoint_interval": None,
        }
        assert payload["system"]["faults"] is None

    def test_commit_protocol_changes_the_key(self, base_task):
        changed = SimulationTask(
            system=base_task.system.with_overrides(
                commit=CommitConfig(protocol="two-phase")
            ),
            workload=base_task.workload,
            protocol=base_task.protocol,
        )
        assert task_key(changed) != task_key(base_task)

    def test_fault_config_changes_the_key(self, base_task):
        changed = SimulationTask(
            system=base_task.system.with_overrides(
                faults=FaultConfig(crashes=(SiteCrash(site=1, at=1.0, duration=0.5),))
            ),
            workload=base_task.workload,
            protocol=base_task.protocol,
        )
        assert task_key(changed) != task_key(base_task)

    def test_prepare_timeout_changes_the_key(self, base_task):
        changed = SimulationTask(
            system=base_task.system.with_overrides(
                commit=CommitConfig(prepare_timeout=2.0)
            ),
            workload=base_task.workload,
            protocol=base_task.protocol,
        )
        assert task_key(changed) != task_key(base_task)

    def test_termination_and_checkpoint_fields_change_the_key(self, base_task):
        for override in (
            CommitConfig(termination_protocol=True),
            CommitConfig(termination_timeout=0.5),
            CommitConfig(checkpoint_interval=2.0),
        ):
            changed = SimulationTask(
                system=base_task.system.with_overrides(commit=override),
                workload=base_task.workload,
                protocol=base_task.protocol,
            )
            assert task_key(changed) != task_key(base_task)

    def test_coordinator_crashes_change_the_key(self, base_task):
        changed = SimulationTask(
            system=base_task.system.with_overrides(
                faults=FaultConfig(
                    coordinator_crashes=(CoordinatorCrash(site=0, at=1.0, duration=2.0),)
                )
            ),
            workload=base_task.workload,
            protocol=base_task.protocol,
        )
        assert task_key(changed) != task_key(base_task)

    def test_warm_resume_on_a_v2_store_misses_cleanly(self, base_task, tmp_path):
        """A store written under the v2 schema serves nothing to v4 lookups.

        v2 keys digested a payload without commit/fault fields, so the same
        logical configuration now addresses a different key: the old rows
        stay inert instead of being served with unspecified commit semantics.
        """
        store = ResultStore(tmp_path / "runs.jsonl")
        store.put(self.V2_ERA_KEY, {"schema": 2}, {"committed": 10})
        assert task_key(base_task) != self.V2_ERA_KEY
        assert store.lookup(task_key(base_task)) is None
        assert store.lookup(self.V2_ERA_KEY) is not None

    def test_fault_payload_round_trips_through_json(self, base_task):
        import json

        task = SimulationTask(
            system=base_task.system.with_overrides(
                commit=CommitConfig(protocol="two-phase", prepare_timeout=0.5),
                faults=FaultConfig(
                    crashes=(SiteCrash(site=1, at=1.0, duration=0.5),),
                    crash_rate=0.2,
                    mean_repair_time=0.3,
                    horizon=8.0,
                ),
            ),
            workload=base_task.workload,
        )
        payload = task_payload(task)
        assert json.loads(json.dumps(payload)) == payload


class TestCanonicalValue:
    def test_enums_collapse_to_strings(self):
        assert canonical_value(Protocol.TIMESTAMP_ORDERING) == "T/O"

    def test_mappings_get_string_keys(self):
        value = canonical_value({Protocol.PRECEDENCE_AGREEMENT: 1.0})
        assert value == {"PA": 1.0}

    def test_tuples_become_lists(self):
        assert canonical_value((1, 2, 3)) == [1, 2, 3]

    def test_unknown_types_are_rejected(self):
        with pytest.raises(TypeError):
            canonical_value(object())

    def test_payload_is_json_pure(self, base_task):
        import json

        payload = task_payload(base_task)
        assert json.loads(json.dumps(payload)) == payload
