"""Content-addressed task keys: determinism and sensitivity."""

import pytest

from repro.analysis.replications import SimulationTask
from repro.common.config import ProtocolMix, SystemConfig, WorkloadConfig
from repro.common.protocol_names import Protocol
from repro.store import canonical_value, task_key, task_payload


@pytest.fixture(scope="module")
def base_task():
    return SimulationTask(
        system=SystemConfig(num_sites=2, num_items=16, seed=3),
        workload=WorkloadConfig(arrival_rate=20.0, num_transactions=10, seed=4),
        protocol="2PL",
    )


class TestTaskKey:
    def test_deterministic_across_calls(self, base_task):
        assert task_key(base_task) == task_key(base_task)

    def test_equal_tasks_share_a_key(self, base_task):
        clone = SimulationTask(
            system=SystemConfig(num_sites=2, num_items=16, seed=3),
            workload=WorkloadConfig(arrival_rate=20.0, num_transactions=10, seed=4),
            protocol="2PL",
        )
        assert task_key(clone) == task_key(base_task)

    def test_protocol_spelling_does_not_matter(self, base_task):
        spelled = SimulationTask(
            system=base_task.system,
            workload=base_task.workload,
            protocol=Protocol.TWO_PHASE_LOCKING,
        )
        assert task_key(spelled) == task_key(base_task)

    @pytest.mark.parametrize(
        "override",
        [
            {"seed": 99},
            {"num_items": 17},
            {"restart_delay": 0.5},
            {"protocol_switch_threshold": 2},
        ],
    )
    def test_system_changes_change_the_key(self, base_task, override):
        changed = SimulationTask(
            system=base_task.system.with_overrides(**override),
            workload=base_task.workload,
            protocol=base_task.protocol,
        )
        assert task_key(changed) != task_key(base_task)

    @pytest.mark.parametrize(
        "override",
        [
            {"seed": 99},
            {"arrival_rate": 21.0},
            {"num_transactions": 11},
            {"protocol_mix": ProtocolMix.pure(Protocol.PRECEDENCE_AGREEMENT)},
        ],
    )
    def test_workload_changes_change_the_key(self, base_task, override):
        changed = SimulationTask(
            system=base_task.system,
            workload=base_task.workload.with_overrides(**override),
            protocol=base_task.protocol,
        )
        assert task_key(changed) != task_key(base_task)

    def test_mode_changes_change_the_key(self, base_task):
        mixed = SimulationTask(system=base_task.system, workload=base_task.workload)
        dynamic = SimulationTask(
            system=base_task.system, workload=base_task.workload, dynamic_selection=True
        )
        keys = {task_key(base_task), task_key(mixed), task_key(dynamic)}
        assert len(keys) == 3

    def test_protocol_mix_weight_order_does_not_matter(self, base_task):
        forward = ProtocolMix(
            {Protocol.TWO_PHASE_LOCKING: 1.0, Protocol.TIMESTAMP_ORDERING: 2.0}
        )
        backward = ProtocolMix(
            {Protocol.TIMESTAMP_ORDERING: 2.0, Protocol.TWO_PHASE_LOCKING: 1.0}
        )
        first = SimulationTask(
            system=base_task.system,
            workload=base_task.workload.with_overrides(protocol_mix=forward),
        )
        second = SimulationTask(
            system=base_task.system,
            workload=base_task.workload.with_overrides(protocol_mix=backward),
        )
        assert task_key(first) == task_key(second)


class TestCanonicalValue:
    def test_enums_collapse_to_strings(self):
        assert canonical_value(Protocol.TIMESTAMP_ORDERING) == "T/O"

    def test_mappings_get_string_keys(self):
        value = canonical_value({Protocol.PRECEDENCE_AGREEMENT: 1.0})
        assert value == {"PA": 1.0}

    def test_tuples_become_lists(self):
        assert canonical_value((1, 2, 3)) == [1, 2, 3]

    def test_unknown_types_are_rejected(self):
        with pytest.raises(TypeError):
            canonical_value(object())

    def test_payload_is_json_pure(self, base_task):
        import json

        payload = task_payload(base_task)
        assert json.loads(json.dumps(payload)) == payload
