"""Resumability end-to-end: interrupted runs, warm stores, byte-identical tables."""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.analysis.experiments import sweep_arrival_rate
from repro.analysis.replications import replication_tasks, run_tasks
from repro.analysis.tables import rows_to_table
from repro.common.config import SystemConfig, WorkloadConfig
from repro.store import ResultStore

ROOT = Path(__file__).resolve().parent.parent.parent


@pytest.fixture(scope="module")
def tiny_system():
    return SystemConfig(num_sites=2, num_items=16, deadlock_detection_period=0.1, seed=1)


@pytest.fixture(scope="module")
def tiny_workload():
    return WorkloadConfig(
        arrival_rate=25.0, num_transactions=12, min_size=1, max_size=3, seed=2
    )


class TestResumeProducesIdenticalTables:
    def test_interrupted_parallel_sweep_resumes_byte_identical(
        self, tmp_path, tiny_system, tiny_workload
    ):
        rates = (10.0, 30.0)
        fresh_rows = sweep_arrival_rate(rates, system=tiny_system, workload=tiny_workload)
        fresh_table = rows_to_table(fresh_rows)

        # Interrupted run: only a prefix of the sweep made it into the store
        # before the (simulated) kill, and the final append was cut short.
        store = ResultStore(tmp_path / "runs.jsonl")
        sweep_arrival_rate(
            rates[:1], system=tiny_system, workload=tiny_workload, store=store
        )
        raw = store.path.read_bytes()
        store.path.write_bytes(raw[: len(raw) - 40])  # truncate mid-record

        resumed_store = ResultStore(tmp_path / "runs.jsonl")
        assert resumed_store.corrupt_lines == 1
        resumed_rows = sweep_arrival_rate(
            rates, system=tiny_system, workload=tiny_workload, jobs=2, store=resumed_store
        )
        assert rows_to_table(resumed_rows) == fresh_table
        # The lost (truncated) point was re-run, the intact ones were reused.
        assert resumed_store.hits == 2
        assert resumed_store.appended == 4

    def test_warm_store_rerun_executes_zero_tasks(
        self, tmp_path, tiny_system, tiny_workload, monkeypatch
    ):
        rates = (10.0, 30.0)
        store = ResultStore(tmp_path / "runs.jsonl")
        first = sweep_arrival_rate(
            rates, system=tiny_system, workload=tiny_workload, store=store
        )

        def explode(task):
            raise AssertionError("a warm re-run must not execute any simulation task")

        monkeypatch.setattr("repro.analysis.replications.execute_task", explode)
        warm_store = ResultStore(tmp_path / "runs.jsonl")
        again = sweep_arrival_rate(
            rates, system=tiny_system, workload=tiny_workload, store=warm_store
        )
        assert rows_to_table(again) == rows_to_table(first)
        assert warm_store.appended == 0
        assert warm_store.hits == len(rates) * 3

    def test_replicated_scenario_resume_matches_serial(
        self, tmp_path, tiny_system, tiny_workload
    ):
        tasks = replication_tasks(tiny_system, tiny_workload, protocol="PA", seeds=(0, 1, 2))
        serial = run_tasks(tasks)
        store = ResultStore(tmp_path / "runs.jsonl")
        run_tasks(tasks[:2], store=store)  # partial first attempt
        resumed = run_tasks(tasks, store=ResultStore(store.path), jobs=2)
        assert resumed == serial


class TestResumeAfterSigkill:
    def test_sigkilled_cli_sweep_resumes_to_byte_identical_tables(self, tmp_path):
        """Kill a parallel sweep with SIGKILL, resume it, compare with serial.

        Whatever progress the killed process managed to persist — none, some
        points, or a torn final line — the resumed run must emit exactly the
        table a fresh serial run produces.
        """
        store_path = tmp_path / "runs.jsonl"
        env = dict(os.environ, PYTHONPATH=str(ROOT / "src"))
        arguments = [
            sys.executable,
            "-m",
            "repro.cli",
            "sweep",
            "--experiment",
            "e1",
            "--rates",
            "10",
            "30",
            "--transactions",
            "60",
            "--sites",
            "2",
            "--items",
            "16",
        ]
        fresh = subprocess.run(
            arguments, env=env, capture_output=True, text=True, check=True
        )

        victim = subprocess.Popen(
            arguments + ["--jobs", "2", "--store", str(store_path)],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        time.sleep(0.35)  # long enough for some sweep points, short enough for a mid-run kill
        if victim.poll() is None:
            victim.send_signal(signal.SIGKILL)
        victim.wait()

        resumed = subprocess.run(
            arguments + ["--jobs", "2", "--store", str(store_path)],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        assert resumed.stdout == fresh.stdout
        assert "store:" in resumed.stderr

        # And a third run over the now-complete store executes nothing.
        warm = subprocess.run(
            arguments + ["--store", str(store_path), "--resume"],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        assert warm.stdout == fresh.stdout
        assert " 0 executed" in warm.stderr
