"""Experiment harness functions (small parameterisations to stay fast)."""

import pytest

from repro.analysis.experiments import (
    availability_experiment,
    correctness_audit,
    drift_adaptation_experiment,
    dynamic_vs_static,
    semilock_ablation,
    single_item_write_experiment,
    sweep_arrival_rate,
    sweep_transaction_size,
)
from repro.common.config import SystemConfig, WorkloadConfig
from repro.common.errors import ConfigurationError
from repro.store import ResultStore
from repro.common.protocol_names import Protocol


@pytest.fixture(scope="module")
def tiny_system():
    return SystemConfig(num_sites=2, num_items=16, deadlock_detection_period=0.1,
                        restart_delay=0.02, seed=3)


@pytest.fixture(scope="module")
def tiny_workload():
    return WorkloadConfig(arrival_rate=20.0, num_transactions=30, min_size=1, max_size=4,
                          compute_time=0.002, seed=4)


class TestSweeps:
    def test_arrival_rate_sweep_row_structure(self, tiny_system, tiny_workload):
        rows = sweep_arrival_rate([10.0, 30.0], system=tiny_system, workload=tiny_workload)
        assert len(rows) == 2 * 3
        for row in rows:
            assert row["serializable"] is True
            assert row["committed"] == tiny_workload.num_transactions
            assert row["protocol"] in {"2PL", "T/O", "PA"}
            assert row["arrival_rate"] in (10.0, 30.0)

    def test_arrival_rate_sweep_with_dynamic_row(self, tiny_system, tiny_workload):
        rows = sweep_arrival_rate(
            [15.0], system=tiny_system, workload=tiny_workload, include_dynamic=True
        )
        protocols = {row["protocol"] for row in rows}
        assert protocols == {"2PL", "T/O", "PA", "dynamic"}

    def test_transaction_size_sweep(self, tiny_system, tiny_workload):
        rows = sweep_transaction_size([1, 3], system=tiny_system, workload=tiny_workload)
        assert len(rows) == 2 * 3
        assert {row["transaction_size"] for row in rows} == {1, 3}
        assert all(row["serializable"] for row in rows)

    def test_restricted_protocol_list(self, tiny_system, tiny_workload):
        rows = sweep_arrival_rate(
            [10.0],
            protocols=[Protocol.PRECEDENCE_AGREEMENT],
            system=tiny_system,
            workload=tiny_workload,
        )
        assert len(rows) == 1
        assert rows[0]["protocol"] == "PA"


class TestScenarioExperiments:
    def test_single_item_write_experiment(self, tiny_system):
        rows = single_item_write_experiment(
            arrival_rate=20.0, num_transactions=25, system=tiny_system
        )
        assert len(rows) == 3
        by_protocol = {row["protocol"]: row for row in rows}
        # Single-item write-only transactions cannot deadlock under 2PL.
        assert by_protocol["2PL"]["deadlock_aborts"] == 0
        assert all(row["serializable"] for row in rows)

    def test_correctness_audit_upholds_theorems(self, tiny_system, tiny_workload):
        rows = correctness_audit(
            arrival_rates=[25.0], num_transactions=25, system=tiny_system, workload=tiny_workload
        )
        assert len(rows) == 3
        for row in rows:
            assert row["serializable"] is True
            assert row["pa_restarts"] == 0
            assert row["to_deadlock_aborts"] == 0
            assert row["non_2pl_deadlock_victims"] == 0

    def test_dynamic_vs_static_contains_dynamic_rows(self, tiny_system, tiny_workload):
        rows = dynamic_vs_static([20.0], system=tiny_system, workload=tiny_workload)
        assert any(row["protocol"] == "dynamic" for row in rows)

    def test_semilock_ablation_reports_both_modes(self, tiny_system, tiny_workload):
        rows = semilock_ablation(
            arrival_rate=25.0, num_transactions=25, system=tiny_system, workload=tiny_workload
        )
        assert {row["enforcement"] for row in rows} == {"semi-locks", "full locking"}
        assert all(row["serializable"] for row in rows)
        assert all("to_mean_system_time" in row for row in rows)


class TestDriftAdaptation:
    """E9: the drift-scenario comparison driver."""

    @pytest.fixture(scope="class")
    def e9_rows(self):
        return drift_adaptation_experiment(
            ("hotspot-migration",), transactions=60, seeds=(0,)
        )

    def test_row_structure(self, e9_rows):
        policies = [row["policy"] for row in e9_rows]
        assert policies == ["2PL", "T/O", "PA", "adaptive", "frozen"]
        for row in e9_rows:
            assert row["scenario"] == "hotspot-migration"
            assert row["serializable"] is True
            assert row["committed"] == 60
            assert row["post_drift_mean_system_time"] >= 0.0

    def test_serial_and_parallel_rows_are_identical(self, e9_rows):
        parallel = drift_adaptation_experiment(
            ("hotspot-migration",), transactions=60, seeds=(0,), jobs=3
        )
        assert parallel == e9_rows

    def test_store_resume_reproduces_the_rows(self, e9_rows, tmp_path):
        store = ResultStore(tmp_path / "e9.jsonl")
        first = drift_adaptation_experiment(
            ("hotspot-migration",), transactions=60, seeds=(0,), store=store
        )
        warm = ResultStore(tmp_path / "e9.jsonl")
        resumed = drift_adaptation_experiment(
            ("hotspot-migration",), transactions=60, seeds=(0,), store=warm
        )
        assert first == e9_rows
        assert resumed == e9_rows
        assert warm.hits == 5 and warm.misses == 0

    def test_unknown_scenario_fails_loudly(self):
        with pytest.raises(ConfigurationError):
            drift_adaptation_experiment(("no-such-scenario",), transactions=10, seeds=(0,))

    def test_summaries_carry_drift_boundaries(self):
        rows = drift_adaptation_experiment(
            ("mix-flip",), modes=("adaptive",), protocols=(), transactions=40, seeds=(0,)
        )
        assert [row["policy"] for row in rows] == ["adaptive"]


class TestAvailability:
    """E10: the fault-scenario commit-layer comparison driver."""

    @pytest.fixture(scope="class")
    def e10_rows(self):
        return availability_experiment(("site-blackout",), transactions=80, seeds=(0,))

    def test_row_structure(self, e10_rows):
        combos = [(row["commit"], row["protocol"]) for row in e10_rows]
        assert combos == [
            ("one-phase", "2PL"),
            ("one-phase", "T/O"),
            ("one-phase", "PA"),
            ("two-phase", "2PL"),
            ("two-phase", "T/O"),
            ("two-phase", "PA"),
        ]
        for row in e10_rows:
            assert row["scenario"] == "site-blackout"
            assert row["crashes"] >= 1
            assert 0.0 < row["availability"] <= 1.0

    def test_two_phase_keeps_atomicity_one_phase_loses_it(self, e10_rows):
        for row in e10_rows:
            if row["commit"] == "two-phase":
                assert row["atomic"] and row["serializable"]
                assert row["lost_writes"] == 0
                assert row["commit_messages"] > 0
            else:
                assert (
                    row["lost_writes"] > 0
                    or row["divergent_items"] > 0
                    or not row["serializable"]
                )
                assert row["commit_messages"] == 0

    def test_serial_and_parallel_rows_are_identical(self, e10_rows):
        parallel = availability_experiment(
            ("site-blackout",), transactions=80, seeds=(0,), jobs=3
        )
        assert parallel == e10_rows

    def test_store_resume_reproduces_the_rows(self, e10_rows, tmp_path):
        store = ResultStore(tmp_path / "e10.jsonl")
        first = availability_experiment(
            ("site-blackout",), transactions=80, seeds=(0,), store=store
        )
        warm = ResultStore(tmp_path / "e10.jsonl")
        resumed = availability_experiment(
            ("site-blackout",), transactions=80, seeds=(0,), store=warm
        )
        assert first == e10_rows
        assert resumed == e10_rows
        assert warm.hits == 6 and warm.misses == 0

    def test_restricted_commit_layer_and_protocols(self):
        rows = availability_experiment(
            ("crash-storm",),
            commit_protocols=("two-phase",),
            protocols=(Protocol.TWO_PHASE_LOCKING,),
            transactions=40,
            seeds=(0,),
        )
        assert len(rows) == 1
        assert rows[0]["commit"] == "two-phase"
        assert rows[0]["atomic"]
        assert rows[0]["crashes"] >= 1
