"""The parallel replication engine: determinism and parity with serial runs."""

import pytest

from repro.analysis.experiments import (
    correctness_audit,
    semilock_ablation,
    sweep_arrival_rate,
)
from repro.analysis.replications import (
    SimulationTask,
    compare_protocols_replicated,
    run_replicated,
    run_tasks,
)
from repro.analysis.tables import rows_to_table
from repro.common.config import SystemConfig, WorkloadConfig
from repro.system.runner import run_many


@pytest.fixture(scope="module")
def tiny_system():
    return SystemConfig(num_sites=2, num_items=16, deadlock_detection_period=0.1,
                        restart_delay=0.02, seed=1)


@pytest.fixture(scope="module")
def tiny_workload():
    return WorkloadConfig(arrival_rate=25.0, num_transactions=25, min_size=1, max_size=4,
                          compute_time=0.002, seed=2)


class TestRunTasks:
    def test_results_arrive_in_task_order(self, tiny_system, tiny_workload):
        tasks = [
            SimulationTask(
                system=tiny_system,
                workload=tiny_workload.with_overrides(num_transactions=count),
            )
            for count in (5, 10, 15, 20)
        ]
        summaries = run_tasks(tasks, jobs=3)
        assert [summary["committed"] for summary in summaries] == [5, 10, 15, 20]

    def test_parallel_summaries_bit_identical_to_serial(self, tiny_system, tiny_workload):
        tasks = [
            SimulationTask(
                system=tiny_system.with_overrides(seed=seed),
                workload=tiny_workload.with_overrides(seed=seed + 1),
                protocol=protocol,
            )
            for seed in (0, 1)
            for protocol in ("2PL", "T/O", "PA")
        ]
        assert run_tasks(tasks, jobs=1) == run_tasks(tasks, jobs=4)

    def test_summary_carries_audit_fields(self, tiny_system, tiny_workload):
        (summary,) = run_tasks([SimulationTask(system=tiny_system, workload=tiny_workload)])
        assert set(summary["protocol_stats"]) == {"2PL", "T/O", "PA"}
        assert "non_2pl_deadlock_victims" in summary
        assert "deadlocks_found" in summary

    def test_empty_task_list(self):
        assert run_tasks([], jobs=4) == []


class TestReplicatedParity:
    def test_run_replicated_parallel_equals_serial(self, tiny_system, tiny_workload):
        serial = run_replicated(tiny_system, tiny_workload, protocol="2PL",
                                seeds=(0, 1, 2), jobs=1)
        parallel = run_replicated(tiny_system, tiny_workload, protocol="2PL",
                                  seeds=(0, 1, 2), jobs=3)
        assert serial == parallel

    def test_rendered_tables_byte_identical(self, tiny_system, tiny_workload):
        """The acceptance criterion: --jobs N tables match --jobs 1 byte for byte."""
        serial = compare_protocols_replicated(
            tiny_system, tiny_workload, seeds=(0, 1), jobs=1
        )
        parallel = compare_protocols_replicated(
            tiny_system, tiny_workload, seeds=(0, 1), jobs=4
        )
        assert rows_to_table(serial).encode() == rows_to_table(parallel).encode()

    def test_compare_requires_at_least_one_seed(self, tiny_system, tiny_workload):
        with pytest.raises(ValueError):
            compare_protocols_replicated(tiny_system, tiny_workload, seeds=())

    def test_dynamic_selection_parity(self, tiny_system, tiny_workload):
        serial = run_replicated(tiny_system, tiny_workload, dynamic_selection=True,
                                seeds=(0, 1), jobs=1)
        parallel = run_replicated(tiny_system, tiny_workload, dynamic_selection=True,
                                  seeds=(0, 1), jobs=2)
        assert serial == parallel


class TestExperimentParity:
    def test_sweep_arrival_rate_parity(self, tiny_system, tiny_workload):
        serial = sweep_arrival_rate([10.0, 30.0], system=tiny_system,
                                    workload=tiny_workload, jobs=1)
        parallel = sweep_arrival_rate([10.0, 30.0], system=tiny_system,
                                      workload=tiny_workload, jobs=4)
        assert serial == parallel

    def test_correctness_audit_parity(self, tiny_system, tiny_workload):
        serial = correctness_audit(arrival_rates=(15.0,), system=tiny_system,
                                   workload=tiny_workload, jobs=1)
        parallel = correctness_audit(arrival_rates=(15.0,), system=tiny_system,
                                     workload=tiny_workload, jobs=3)
        assert serial == parallel
        assert all(row["serializable"] for row in serial)

    def test_semilock_ablation_parity(self, tiny_system, tiny_workload):
        serial = semilock_ablation(arrival_rate=20.0, system=tiny_system,
                                   workload=tiny_workload, jobs=1)
        parallel = semilock_ablation(arrival_rate=20.0, system=tiny_system,
                                     workload=tiny_workload, jobs=2)
        assert serial == parallel


class TestRunMany:
    def test_run_many_orders_and_parallelises(self, tiny_system, tiny_workload):
        configurations = [
            (tiny_system, tiny_workload.with_overrides(num_transactions=count))
            for count in (5, 10)
        ]
        serial = run_many(configurations, protocol="PA", jobs=1)
        parallel = run_many(configurations, protocol="PA", jobs=2)
        assert serial == parallel
        assert [summary["committed"] for summary in serial] == [5, 10]
