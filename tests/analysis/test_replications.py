"""Replicated runs and confidence-interval aggregation."""

import pytest

from repro.analysis.replications import (
    AGGREGATED_METRICS,
    compare_protocols_replicated,
    run_replicated,
)
from repro.common.config import SystemConfig, WorkloadConfig


@pytest.fixture(scope="module")
def tiny_system():
    return SystemConfig(num_sites=2, num_items=16, deadlock_detection_period=0.1,
                        restart_delay=0.02, seed=1)


@pytest.fixture(scope="module")
def tiny_workload():
    return WorkloadConfig(arrival_rate=25.0, num_transactions=25, min_size=1, max_size=4,
                          compute_time=0.002, seed=2)


class TestRunReplicated:
    def test_aggregates_all_expected_metrics(self, tiny_system, tiny_workload):
        result = run_replicated(tiny_system, tiny_workload, protocol="2PL", seeds=(0, 1, 2))
        assert result.replications == 3
        assert set(result.metrics) == set(AGGREGATED_METRICS)
        assert result.all_serializable
        assert result.all_committed

    def test_confidence_interval_brackets_the_mean(self, tiny_system, tiny_workload):
        result = run_replicated(tiny_system, tiny_workload, protocol="PA", seeds=(0, 1, 2))
        metric = result.metric("mean_system_time")
        assert metric.low <= metric.mean <= metric.high
        assert metric.samples == 3
        assert metric.mean > 0

    def test_label_defaults(self, tiny_system, tiny_workload):
        replicated = run_replicated(tiny_system, tiny_workload, protocol="t/o", seeds=(0,))
        assert replicated.label == "T/O"
        assert run_replicated(tiny_system, tiny_workload, seeds=(0,)).label == "mixed"
        assert (
            run_replicated(tiny_system, tiny_workload, dynamic_selection=True, seeds=(0,)).label
            == "dynamic"
        )

    def test_requires_at_least_one_seed(self, tiny_system, tiny_workload):
        with pytest.raises(ValueError):
            run_replicated(tiny_system, tiny_workload, seeds=())

    def test_as_row_contains_mean_and_halfwidth_columns(self, tiny_system, tiny_workload):
        row = run_replicated(tiny_system, tiny_workload, protocol="2PL", seeds=(0, 1)).as_row()
        assert "mean_system_time" in row
        assert "mean_system_time_hw" in row
        assert row["replications"] == 2

    def test_different_seeds_produce_spread(self, tiny_system, tiny_workload):
        result = run_replicated(tiny_system, tiny_workload, protocol="2PL", seeds=(0, 1, 2, 3))
        assert result.metric("mean_system_time").stdev >= 0.0


class TestCompareProtocols:
    def test_comparison_rows(self, tiny_system, tiny_workload):
        rows = compare_protocols_replicated(
            tiny_system, tiny_workload, seeds=(0, 1), include_dynamic=False
        )
        assert [row["configuration"] for row in rows] == ["2PL", "T/O", "PA"]
        assert all(row["serializable"] for row in rows)

    def test_comparison_with_dynamic(self, tiny_system, tiny_workload):
        rows = compare_protocols_replicated(
            tiny_system, tiny_workload, protocols=("PA",), seeds=(0,), include_dynamic=True
        )
        assert [row["configuration"] for row in rows] == ["PA", "dynamic"]
