"""Result-table rendering."""

from repro.analysis.tables import format_table, format_value, rows_to_table


class TestFormatValue:
    def test_floats_are_rounded(self):
        assert format_value(1.23456789) == "1.2346"

    def test_small_and_large_floats_use_general_format(self):
        assert format_value(0.000123) == "0.000123"
        assert format_value(123456.0) == "1.235e+05"

    def test_zero(self):
        assert format_value(0.0) == "0"

    def test_booleans_render_as_yes_no(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_strings_pass_through(self):
        assert format_value("2PL") == "2PL"

    def test_integers(self):
        assert format_value(42) == "42"


class TestFormatTable:
    def test_header_and_rows_aligned(self):
        table = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_separator_line_present(self):
        table = format_table(["x"], [[1]])
        assert "-" in table.splitlines()[1]

    def test_wide_cells_expand_columns(self):
        table = format_table(["p"], [["a-very-long-protocol-name"]])
        assert "a-very-long-protocol-name" in table


class TestRowsToTable:
    def test_empty_rows(self):
        assert rows_to_table([]) == "(no rows)"

    def test_columns_default_to_first_row_keys(self):
        rows = [{"a": 1, "b": 2}, {"a": 3, "b": 4}]
        table = rows_to_table(rows)
        assert table.splitlines()[0].split("|")[0].strip() == "a"

    def test_explicit_column_selection_and_order(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        table = rows_to_table(rows, columns=["c", "a"])
        header = table.splitlines()[0]
        assert header.index("c") < header.index("a")
        assert "b" not in header

    def test_missing_cells_render_empty(self):
        rows = [{"a": 1}, {"a": 2, "b": 5}]
        table = rows_to_table(rows, columns=["a", "b"])
        assert "5" in table
