"""Statistics collectors."""

import math

import pytest

from repro.sim.stats import (
    Counter,
    SummaryStatistics,
    TimeWeightedValue,
    WelfordAccumulator,
)


class TestWelfordAccumulator:
    def test_empty_accumulator_reports_zeros(self):
        acc = WelfordAccumulator()
        assert acc.count == 0
        assert acc.mean == 0.0
        assert acc.variance == 0.0
        assert acc.minimum == 0.0
        assert acc.maximum == 0.0

    def test_mean_and_variance_match_reference(self):
        data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        acc = WelfordAccumulator()
        acc.extend(data)
        mean = sum(data) / len(data)
        variance = sum((x - mean) ** 2 for x in data) / (len(data) - 1)
        assert acc.mean == pytest.approx(mean)
        assert acc.variance == pytest.approx(variance)
        assert acc.stdev == pytest.approx(math.sqrt(variance))

    def test_min_max(self):
        acc = WelfordAccumulator()
        acc.extend([3.0, -1.0, 10.0])
        assert acc.minimum == -1.0
        assert acc.maximum == 10.0

    def test_single_observation_has_zero_variance(self):
        acc = WelfordAccumulator()
        acc.add(5.0)
        assert acc.variance == 0.0
        assert acc.confidence_halfwidth() == 0.0

    def test_confidence_halfwidth_shrinks_with_samples(self):
        small, large = WelfordAccumulator(), WelfordAccumulator()
        small.extend([1.0, 2.0, 3.0] * 3)
        large.extend([1.0, 2.0, 3.0] * 300)
        assert large.confidence_halfwidth() < small.confidence_halfwidth()


class TestCounter:
    def test_increment_and_get(self):
        counter = Counter()
        counter.increment("a")
        counter.increment("a", 2)
        assert counter.get("a") == 3
        assert counter.get("missing") == 0

    def test_as_dict(self):
        counter = Counter()
        counter.increment("x", 5)
        assert counter.as_dict() == {"x": 5}


class TestTimeWeightedValue:
    def test_constant_value_average(self):
        value = TimeWeightedValue(initial_value=2.0)
        assert value.average(now=10.0) == pytest.approx(2.0)

    def test_step_change_average(self):
        value = TimeWeightedValue(initial_value=0.0)
        value.update(4.0, now=5.0)       # 0 for 5 units, then 4
        assert value.average(now=10.0) == pytest.approx(2.0)

    def test_rejects_time_going_backwards(self):
        value = TimeWeightedValue()
        value.update(1.0, now=5.0)
        with pytest.raises(ValueError):
            value.update(2.0, now=4.0)

    def test_current_value(self):
        value = TimeWeightedValue()
        value.update(3.0, now=1.0)
        assert value.current == 3.0


class TestSummaryStatistics:
    def test_from_empty_values(self):
        summary = SummaryStatistics.from_values([])
        assert summary.count == 0
        assert summary.mean == 0.0

    def test_from_values(self):
        summary = SummaryStatistics.from_values([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.p50 == pytest.approx(2.5)

    def test_p95_close_to_maximum_for_uniform_data(self):
        summary = SummaryStatistics.from_values(list(range(101)))
        assert summary.p95 == pytest.approx(95.0)

    def test_single_value(self):
        summary = SummaryStatistics.from_values([7.0])
        assert summary.p50 == 7.0
        assert summary.p95 == 7.0
