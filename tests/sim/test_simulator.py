"""Discrete-event simulator core."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.simulator import Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_clock_advances_to_event_times(self):
        simulator = Simulator()
        times = []
        simulator.schedule(1.5, lambda: times.append(simulator.now))
        simulator.schedule(0.5, lambda: times.append(simulator.now))
        simulator.run()
        assert times == [0.5, 1.5]

    def test_schedule_in_past_raises(self):
        simulator = Simulator()
        with pytest.raises(SimulationError):
            simulator.schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self):
        simulator = Simulator()
        seen = []
        simulator.schedule_at(2.0, lambda: seen.append(simulator.now))
        simulator.run()
        assert seen == [2.0]

    def test_schedule_at_before_now_raises(self):
        simulator = Simulator(start_time=5.0)
        with pytest.raises(SimulationError):
            simulator.schedule_at(4.0, lambda: None)

    def test_events_scheduled_during_run_are_processed(self):
        simulator = Simulator()
        seen = []

        def first():
            seen.append("first")
            simulator.schedule(1.0, lambda: seen.append("second"))

        simulator.schedule(1.0, first)
        simulator.run()
        assert seen == ["first", "second"]
        assert simulator.now == pytest.approx(2.0)


class TestRunControl:
    def test_run_until_limits_the_clock(self):
        simulator = Simulator()
        seen = []
        simulator.schedule(1.0, lambda: seen.append(1))
        simulator.schedule(10.0, lambda: seen.append(2))
        end = simulator.run(until=5.0)
        assert seen == [1]
        assert end == pytest.approx(5.0)
        assert simulator.pending_events == 1

    def test_run_max_events(self):
        simulator = Simulator()
        for i in range(10):
            simulator.schedule(float(i + 1), lambda: None)
        simulator.run(max_events=3)
        assert simulator.events_processed == 3

    def test_stop_inside_callback_halts_the_run(self):
        simulator = Simulator()
        seen = []
        simulator.schedule(1.0, lambda: (seen.append(1), simulator.stop()))
        simulator.schedule(2.0, lambda: seen.append(2))
        simulator.run()
        assert seen == [1]

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_trace_hook_sees_labels(self):
        simulator = Simulator()
        traced = []
        simulator.add_trace_hook(lambda time, label: traced.append((time, label)))
        simulator.schedule(1.0, lambda: None, label="tick")
        simulator.run()
        assert traced == [(1.0, "tick")]

    def test_events_processed_counter(self):
        simulator = Simulator()
        simulator.schedule(1.0, lambda: None)
        simulator.schedule(2.0, lambda: None)
        simulator.run()
        assert simulator.events_processed == 2
