"""Named random streams."""

import pytest

from repro.sim.rng import RandomStreams


class TestRandomStreams:
    def test_same_seed_same_name_gives_identical_sequences(self):
        a = RandomStreams(42).stream("arrivals")
        b = RandomStreams(42).stream("arrivals")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_names_give_different_sequences(self):
        streams = RandomStreams(42)
        a = [streams.stream("arrivals").random() for _ in range(5)]
        b = [streams.stream("sizes").random() for _ in range(5)]
        assert a != b

    def test_different_seeds_give_different_sequences(self):
        a = [RandomStreams(1).stream("x").random() for _ in range(5)]
        b = [RandomStreams(2).stream("x").random() for _ in range(5)]
        assert a != b

    def test_stream_is_cached(self):
        streams = RandomStreams(0)
        assert streams.stream("x") is streams.stream("x")

    def test_independence_from_creation_order(self):
        first = RandomStreams(7)
        first.stream("a")
        value_after_a = first.stream("b").random()
        second = RandomStreams(7)
        value_direct = second.stream("b").random()
        assert value_after_a == value_direct

    def test_exponential_mean_zero_returns_zero(self):
        assert RandomStreams(0).exponential("x", 0.0) == 0.0

    def test_exponential_is_positive(self):
        streams = RandomStreams(3)
        for _ in range(100):
            assert streams.exponential("d", 0.5) > 0.0

    def test_exponential_mean_roughly_matches(self):
        streams = RandomStreams(5)
        samples = [streams.exponential("d", 2.0) for _ in range(5000)]
        assert sum(samples) / len(samples) == pytest.approx(2.0, rel=0.1)

    def test_uniform_int_within_bounds(self):
        streams = RandomStreams(1)
        for _ in range(100):
            assert 3 <= streams.uniform_int("n", 3, 7) <= 7

    def test_master_seed_exposed(self):
        assert RandomStreams(9).master_seed == 9
