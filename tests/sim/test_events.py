"""Event queue behaviour."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.events import EventQueue


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.push(2.0, lambda: fired.append("b"))
        queue.push(1.0, lambda: fired.append("a"))
        queue.push(3.0, lambda: fired.append("c"))
        while queue:
            queue.pop().callback()
        assert fired == ["a", "b", "c"]

    def test_same_time_events_fire_in_scheduling_order(self):
        queue = EventQueue()
        order = []
        queue.push(1.0, lambda: order.append(1))
        queue.push(1.0, lambda: order.append(2))
        queue.push(1.0, lambda: order.append(3))
        while queue:
            queue.pop().callback()
        assert order == [1, 2, 3]

    def test_priority_breaks_ties_before_sequence(self):
        queue = EventQueue()
        order = []
        queue.push(1.0, lambda: order.append("low"), priority=1)
        queue.push(1.0, lambda: order.append("high"), priority=0)
        while queue:
            queue.pop().callback()
        assert order == ["high", "low"]

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        fired = []
        event = queue.push(1.0, lambda: fired.append("cancelled"))
        queue.push(2.0, lambda: fired.append("kept"))
        event.cancel()
        while queue:
            queue.pop().callback()
        assert fired == ["kept"]

    def test_len_ignores_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2
        event.cancel()
        assert len(queue) == 1

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(5.0, lambda: None)
        event.cancel()
        assert queue.peek_time() == 5.0

    def test_peek_time_empty_returns_none(self):
        assert EventQueue().peek_time() is None

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_clear_empties_queue(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.clear()
        assert not queue
