"""The fault injector: timelines, determinism, spikes, drops, crash wipes."""

import pytest

from repro.common.config import (
    DelaySpike,
    FaultConfig,
    NetworkConfig,
    SiteCrash,
)
from repro.common.errors import SimulationError
from repro.common.ids import CopyId, RequestId, TransactionId
from repro.common.operations import OperationType
from repro.common.protocol_names import Protocol
from repro.core.queue_manager import QueueManager
from repro.core.requests import Request
from repro.sim.actor import Actor, Message
from repro.sim.faults import FaultInjector
from repro.sim.network import Network
from repro.sim.rng import RandomStreams
from repro.sim.simulator import Simulator


def build_injector(config, num_sites=4, seed=0, simulator=None):
    simulator = simulator if simulator is not None else Simulator()
    return FaultInjector(simulator, config, num_sites, RandomStreams(seed))


class Recorder(Actor):
    """Crashable actor that records every delivered message."""

    crashable = True

    def __init__(self, name, site):
        super().__init__(name, site)
        self.received = []

    def handle(self, message: Message) -> None:
        self.received.append(message)


class TestTimeline:
    def test_scheduled_crash_window(self):
        injector = build_injector(
            FaultConfig(crashes=(SiteCrash(site=1, at=2.0, duration=1.0),))
        )
        assert injector.site_up(1, 1.9)
        assert not injector.site_up(1, 2.0)
        assert not injector.site_up(1, 2.9)
        assert injector.site_up(1, 3.0)
        assert injector.site_up(0, 2.5)
        assert injector.downtime_of(1) == ((2.0, 3.0),)

    def test_overlapping_windows_merge(self):
        injector = build_injector(
            FaultConfig(
                crashes=(
                    SiteCrash(site=0, at=1.0, duration=1.0),
                    SiteCrash(site=0, at=1.5, duration=1.0),
                )
            )
        )
        assert injector.downtime_of(0) == ((1.0, 2.5),)
        assert injector.total_crashes_planned == 1

    def test_sites_outside_the_model_are_always_up(self):
        injector = build_injector(FaultConfig())
        assert injector.site_up(99, 5.0)

    def test_stochastic_timeline_is_seed_deterministic(self):
        config = FaultConfig(crash_rate=0.5, mean_repair_time=0.3, horizon=20.0)
        first = build_injector(config, seed=3)
        second = build_injector(config, seed=3)
        third = build_injector(config, seed=4)
        assert first.downtime_of(0) == second.downtime_of(0)
        assert first.downtime_of(0) != third.downtime_of(0)
        assert first.total_crashes_planned > 0

    def test_start_twice_rejected(self):
        injector = build_injector(
            FaultConfig(crashes=(SiteCrash(site=0, at=1.0, duration=1.0),))
        )
        injector.start()
        with pytest.raises(SimulationError):
            injector.start()


class TestListeners:
    def test_crash_and_recovery_listeners_fire_in_order(self):
        simulator = Simulator()
        injector = build_injector(
            FaultConfig(crashes=(SiteCrash(site=2, at=1.0, duration=0.5),)),
            simulator=simulator,
        )
        events = []
        injector.add_crash_listener(lambda site, now: events.append(("crash", site, now)))
        injector.add_recovery_listener(lambda site, now: events.append(("recover", site, now)))
        injector.start()
        simulator.run()
        assert events == [("crash", 2, 1.0), ("recover", 2, 1.5)]
        assert injector.crash_count == 1


class TestDelaySpikes:
    CONFIG = FaultConfig(
        spikes=(
            DelaySpike(at=1.0, duration=1.0, multiplier=10.0),
            DelaySpike(at=5.0, duration=1.0, multiplier=4.0, site=2),
        )
    )

    def test_global_spike_hits_every_remote_link(self):
        injector = build_injector(self.CONFIG)
        assert injector.delay_multiplier(0, 1, 1.5) == 10.0
        assert injector.delay_multiplier(0, 1, 2.5) == 1.0

    def test_site_spike_hits_only_its_links(self):
        injector = build_injector(self.CONFIG)
        assert injector.delay_multiplier(0, 2, 5.5) == 4.0
        assert injector.delay_multiplier(2, 1, 5.5) == 4.0
        assert injector.delay_multiplier(0, 1, 5.5) == 1.0

    def test_overlapping_spikes_take_the_maximum(self):
        config = FaultConfig(
            spikes=(
                DelaySpike(at=0.0, duration=2.0, multiplier=3.0),
                DelaySpike(at=1.0, duration=2.0, multiplier=7.0),
            )
        )
        injector = build_injector(config)
        assert injector.delay_multiplier(0, 1, 1.5) == 7.0

    def test_spiked_latency_slows_remote_messages(self):
        config = FaultConfig(spikes=(DelaySpike(at=0.0, duration=10.0, multiplier=5.0),))
        simulator = Simulator()
        injector = build_injector(config, simulator=simulator)
        network = Network(
            simulator,
            NetworkConfig(fixed_delay=0.1, variable_delay=0.0, local_delay=0.001),
            RandomStreams(1),
            faults=injector,
        )
        sender, receiver = Recorder("s", 0), Recorder("r", 1)
        network.register(sender)
        network.register(receiver)
        network.send(sender, "r", "ping")
        simulator.run()
        assert simulator.now == pytest.approx(0.5)


class TestMessageDrops:
    def build(self):
        simulator = Simulator()
        injector = build_injector(
            FaultConfig(crashes=(SiteCrash(site=1, at=0.0, duration=10.0),)),
            simulator=simulator,
        )
        network = Network(
            simulator,
            NetworkConfig(fixed_delay=0.01, variable_delay=0.0, local_delay=0.001),
            RandomStreams(1),
            faults=injector,
        )
        return simulator, network

    def test_message_to_downed_crashable_actor_is_dropped(self):
        simulator, network = self.build()
        sender, receiver = Recorder("s", 0), Recorder("r", 1)
        network.register(sender)
        network.register(receiver)
        network.send(sender, "r", "ping")
        simulator.run()
        assert receiver.received == []
        assert network.messages_dropped == 1
        assert network.dropped_by_kind() == {"ping": 1}
        # The communication cost was still paid.
        assert network.messages_sent == 1

    def test_non_crashable_actors_keep_receiving(self):
        simulator, network = self.build()

        class Sturdy(Recorder):
            crashable = False

        sender, receiver = Recorder("s", 0), Sturdy("r", 1)
        network.register(sender)
        network.register(receiver)
        network.send(sender, "r", "ping")
        simulator.run()
        assert len(receiver.received) == 1
        assert network.messages_dropped == 0


def _request(tid_seq, copy, op_type=OperationType.WRITE, attempt=0, timestamp=1.0):
    tid = TransactionId(0, tid_seq)
    return Request(
        request_id=RequestId(tid, 0, attempt),
        transaction=tid,
        protocol=Protocol.TWO_PHASE_LOCKING,
        op_type=op_type,
        copy=copy,
        timestamp=timestamp,
        backoff_interval=1.0,
        issuer="ri-0",
    )


class TestQueueManagerCrash:
    COPY = CopyId(0, 0)

    def test_crash_wipes_queue_and_locks(self):
        manager = QueueManager(self.COPY)
        manager.submit(_request(1, self.COPY), now=0.0)
        assert manager.queue_length() == 1
        assert manager.granted_locks()
        manager.crash(now=1.0)
        assert manager.queue_length() == 0
        assert not manager.granted_locks()
        assert manager.drain_effects() == []
        assert manager.crashes == 1

    def test_crash_preserves_timestamps(self):
        manager = QueueManager(self.COPY)
        manager.submit(_request(1, self.COPY, timestamp=5.0), now=0.0)
        before = manager.write_ts
        manager.crash(now=1.0)
        assert manager.write_ts == before

    def test_restore_lock_blocks_later_conflicting_requests(self):
        manager = QueueManager(self.COPY)
        request = _request(1, self.COPY)
        manager.submit(request, now=0.0)
        manager.crash(now=1.0)
        assert not manager.holds_granted_lock(request.request_id)
        manager.restore_lock(request, now=1.5)
        assert manager.holds_granted_lock(request.request_id)
        manager.drain_effects()
        competitor = _request(2, self.COPY, timestamp=2.0)
        manager.submit(competitor, now=2.0)
        effects = manager.drain_effects()
        # The competitor queues behind the restored lock instead of jumping it.
        assert not any(
            getattr(effect, "request", None) is competitor for effect in effects
        )
        manager.release(request.transaction, now=3.0, attempt=request.request_id.attempt)
        effects = manager.drain_effects()
        assert any(getattr(effect, "request", None) is competitor for effect in effects)

    def test_abort_withdraws_log_entries_even_after_a_wipe(self):
        manager = QueueManager(self.COPY)
        read = _request(1, self.COPY, op_type=OperationType.READ)
        manager.submit(read, now=0.0)
        # The read implemented at grant time: one tentative log entry.
        assert manager.execution_log.total_operations() == 1
        manager.crash(now=1.0)
        manager.abort(read.transaction, now=2.0)
        assert manager.execution_log.total_operations() == 0

    def test_attempt_scoped_abort_leaves_other_attempts_alone(self):
        manager = QueueManager(self.COPY)
        old = _request(1, self.COPY, op_type=OperationType.READ, attempt=0)
        manager.submit(old, now=0.0)
        manager.crash(now=1.0)
        fresh = _request(1, self.COPY, op_type=OperationType.READ, attempt=1, timestamp=2.0)
        manager.submit(fresh, now=2.0)
        assert manager.execution_log.total_operations() == 2
        manager.abort(old.transaction, now=3.0, attempt=0)
        entries = [
            entry
            for log in manager.execution_log.logs()
            for entry in log.entries()
        ]
        assert [entry.attempt for entry in entries] == [1]
        assert manager.holds_granted_lock(fresh.request_id)
