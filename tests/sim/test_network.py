"""Simulated network: latency, FIFO channels and message accounting."""

import pytest

from repro.common.config import NetworkConfig
from repro.common.errors import SimulationError
from repro.sim.actor import Actor, Message
from repro.sim.network import Network
from repro.sim.rng import RandomStreams
from repro.sim.simulator import Simulator


class Recorder(Actor):
    """Actor that records every delivered message."""

    def __init__(self, name, site):
        super().__init__(name, site)
        self.received = []

    def handle(self, message: Message) -> None:
        self.received.append(message)


def build_network(fixed=0.01, variable=0.0, local=0.001):
    simulator = Simulator()
    network = Network(
        simulator,
        NetworkConfig(fixed_delay=fixed, variable_delay=variable, local_delay=local),
        RandomStreams(1),
    )
    return simulator, network


class TestRegistration:
    def test_duplicate_names_rejected(self):
        _, network = build_network()
        network.register(Recorder("a", 0))
        with pytest.raises(SimulationError):
            network.register(Recorder("a", 1))

    def test_unknown_actor_lookup_raises(self):
        _, network = build_network()
        with pytest.raises(SimulationError):
            network.actor("missing")


class TestDelivery:
    def test_remote_message_arrives_after_fixed_delay(self):
        simulator, network = build_network(fixed=0.05, variable=0.0)
        sender, receiver = Recorder("s", 0), Recorder("r", 1)
        network.register(sender)
        network.register(receiver)
        network.send(sender, "r", "ping", payload=123)
        simulator.run()
        assert len(receiver.received) == 1
        assert receiver.received[0].payload == 123
        assert simulator.now == pytest.approx(0.05)

    def test_local_message_uses_local_delay(self):
        simulator, network = build_network(fixed=0.05, local=0.001)
        sender, receiver = Recorder("s", 0), Recorder("r", 0)
        network.register(sender)
        network.register(receiver)
        network.send(sender, "r", "ping")
        simulator.run()
        assert simulator.now == pytest.approx(0.001)

    def test_channel_is_fifo_even_with_random_latency(self):
        simulator, network = build_network(fixed=0.01, variable=0.05)
        sender, receiver = Recorder("s", 0), Recorder("r", 1)
        network.register(sender)
        network.register(receiver)
        for index in range(20):
            network.send(sender, "r", "msg", payload=index)
        simulator.run()
        payloads = [message.payload for message in receiver.received]
        assert payloads == list(range(20))

    def test_broadcast_reaches_every_receiver(self):
        simulator, network = build_network()
        sender = Recorder("s", 0)
        receivers = [Recorder(f"r{i}", i % 2) for i in range(3)]
        network.register(sender)
        for receiver in receivers:
            network.register(receiver)
        network.broadcast(sender, [r.name for r in receivers], "hello")
        simulator.run()
        assert all(len(r.received) == 1 for r in receivers)


class TestAccounting:
    def test_message_counters(self):
        simulator, network = build_network()
        sender, remote, local = Recorder("s", 0), Recorder("remote", 1), Recorder("local", 0)
        for actor in (sender, remote, local):
            network.register(actor)
        network.send(sender, "remote", "a")
        network.send(sender, "local", "b")
        assert network.messages_sent == 2
        assert network.remote_messages == 1
        assert network.local_messages == 1
        assert network.messages_by_kind() == {"a": 1, "b": 1}

    def test_overhead_messages_are_counted(self):
        _, network = build_network()
        network.charge_overhead_messages("probe", 5)
        assert network.messages_sent == 5
        assert network.messages_by_kind()["probe"] == 5

    def test_negative_overhead_rejected(self):
        _, network = build_network()
        with pytest.raises(SimulationError):
            network.charge_overhead_messages("probe", -1)

    def test_latency_is_deterministic_per_seed(self):
        def sample(seed):
            simulator = Simulator()
            network = Network(simulator, NetworkConfig(variable_delay=0.05), RandomStreams(seed))
            return [network.latency(0, 1) for _ in range(5)]

        assert sample(3) == sample(3)
        assert sample(3) != sample(4)


class TestExplicitRng:
    """Regression: the network must never silently fall back to a default RNG.

    The old signature defaulted to ``RandomStreams(0)`` when no rng was
    passed, which decoupled message delays from the run seed — two runs with
    different seeds drew identical latencies.  The rng is now a required
    argument.
    """

    def test_network_requires_an_rng_argument(self):
        with pytest.raises(TypeError):
            Network(Simulator(), NetworkConfig())

    def test_network_rejects_a_none_rng(self):
        with pytest.raises(SimulationError):
            Network(Simulator(), NetworkConfig(), None)

    def test_latencies_follow_the_provided_seed(self):
        config = NetworkConfig(variable_delay=0.05)
        seeded = Network(Simulator(), config, RandomStreams(7))
        reseeded = Network(Simulator(), config, RandomStreams(8))
        assert [seeded.latency(0, 1) for _ in range(5)] != [
            reseeded.latency(0, 1) for _ in range(5)
        ]


class TestBaseActor:
    def test_base_actor_handle_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Actor("x", 0).handle(Message(kind="k", sender="a", receiver="x"))
