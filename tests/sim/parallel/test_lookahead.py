"""Lookahead derivation and policy: windows, barriers, fault adjustments."""

import pytest

from repro.common.config import DelaySpike, FaultConfig, NetworkConfig, SystemConfig
from repro.sim.parallel.lookahead import (
    LookaheadPolicy,
    derive_lookahead,
    effective_lookahead,
)


class TestDeriveLookahead:
    def test_default_config_gives_the_fixed_delay(self):
        system = SystemConfig()
        assert derive_lookahead(system) == system.network.fixed_delay

    def test_zero_fixed_delay_gives_zero(self):
        system = SystemConfig(network=NetworkConfig(fixed_delay=0.0, variable_delay=0.02))
        assert derive_lookahead(system) == 0.0

    def test_variable_delay_never_contributes(self):
        """Only the guaranteed minimum counts; the exponential part can be ~0."""
        system = SystemConfig(network=NetworkConfig(fixed_delay=0.03, variable_delay=9.0))
        assert derive_lookahead(system) == 0.03

    def test_delay_spikes_do_not_shrink_the_bound(self):
        """Spikes multiply latency by >= 1, so the fixed-delay floor survives.

        This is the edge case that matters for conservatism: a fault that
        could *shorten* a delivery below the lookahead would break every
        window; the fault model only ever lengthens, and the engine asserts
        the promise per event anyway.
        """
        spiky = SystemConfig(
            faults=FaultConfig(spikes=(DelaySpike(at=0.5, duration=1.0, multiplier=50.0),))
        )
        calm = SystemConfig()
        assert derive_lookahead(spiky) == derive_lookahead(calm)


class TestLookaheadPolicy:
    def test_positive_lookahead_windows(self):
        policy = LookaheadPolicy.of(0.25)
        assert not policy.barrier
        assert policy.horizon(4.0) == 4.25

    def test_zero_lookahead_degrades_to_barrier(self):
        policy = LookaheadPolicy.of(0.0)
        assert policy.barrier
        assert policy.horizon(4.0) == 4.0

    def test_negative_lookahead_clamps_to_barrier(self):
        policy = LookaheadPolicy.of(-1.0)
        assert policy.barrier

    def test_from_system_matches_derive(self):
        system = SystemConfig()
        policy = LookaheadPolicy.from_system(system)
        assert policy.window == derive_lookahead(system)


class TestEffectiveLookahead:
    def test_unadjusted_value_passes_through(self):
        assert effective_lookahead(0.01, 0.0) == 0.01

    def test_adjustment_reduces_the_bound(self):
        assert effective_lookahead(0.01, -0.004) == pytest.approx(0.006)

    @pytest.mark.parametrize("adjustment", [-0.01, -0.02])
    def test_zero_or_negative_collapses_to_none(self, adjustment):
        """A collapsed lookahead means no safe window exists: barrier mode."""
        assert effective_lookahead(0.01, adjustment) is None
