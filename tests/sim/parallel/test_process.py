"""Unit seams of the process backend: partitioning, classification, capture."""

import pytest

from repro.common.config import NetworkConfig, SystemConfig
from repro.common.errors import SimulationError
from repro.common.protocol_names import Protocol
from repro.sim.parallel.instruments import (
    PREFORK_TIME,
    CaptureBus,
    RecordingMetrics,
    RecordingRegistry,
)
from repro.sim.parallel.process import (
    assign_sites,
    backend_unavailable_reason,
    classify_control_event,
)
from repro.system.database import DistributedDatabase
from repro.system.metrics import MetricsCollector


class TestAssignSites:
    def test_even_split_is_contiguous(self):
        assert assign_sites(4, 2) == [(0, 1), (2, 3)]

    def test_remainder_goes_to_the_first_workers(self):
        assert assign_sites(5, 2) == [(0, 1, 2), (3, 4)]
        assert assign_sites(7, 3) == [(0, 1, 2), (3, 4), (5, 6)]

    def test_one_worker_per_site(self):
        assert assign_sites(3, 3) == [(0,), (1,), (2,)]

    def test_every_site_is_assigned_exactly_once(self):
        for sites in range(1, 9):
            for workers in range(1, sites + 1):
                flat = [s for owned in assign_sites(sites, workers) for s in owned]
                assert flat == list(range(sites))


class TestBackendEligibility:
    def _system(self, **overrides):
        return SystemConfig(num_sites=4, num_items=16, seed=3).with_overrides(**overrides)

    def test_plain_multi_site_config_is_eligible(self):
        assert (
            backend_unavailable_reason(
                self._system(), choose_protocol=None, external_store=False
            )
            is None
        )

    def test_dynamic_selection_is_named(self):
        reason = backend_unavailable_reason(
            self._system(), choose_protocol=lambda spec: None, external_store=False
        )
        assert reason == "dynamic-selection"

    def test_external_store_is_named(self):
        reason = backend_unavailable_reason(
            self._system(), choose_protocol=None, external_store=True
        )
        assert reason == "external-value-store"

    def test_single_site_is_named(self):
        reason = backend_unavailable_reason(
            self._system(num_sites=1), choose_protocol=None, external_store=False
        )
        assert reason == "single-site"

    def test_zero_lookahead_is_named(self):
        system = self._system(network=NetworkConfig(fixed_delay=0.0, variable_delay=0.02))
        reason = backend_unavailable_reason(
            system, choose_protocol=None, external_store=False
        )
        assert reason == "zero-lookahead"


class TestControlClassification:
    @pytest.fixture(scope="class")
    def database(self):
        system = SystemConfig(
            num_sites=3, num_items=16, seed=3, engine="parallel", engine_workers=2
        )
        return DistributedDatabase(system)

    def _control_events(self, database):
        simulator = database.simulator
        queue = simulator._partitions[simulator._control]
        events = []
        while queue.peek() is not None:
            events.append(queue.pop())
        return events

    def test_scan_and_checkpoint_chains_classify(self, database):
        database.detector.start()
        database._simulator._partitions  # touch: the control queue exists
        (scan_event,) = self._control_events(database)
        assert classify_control_event(scan_event, database) == ("scan", None)

    def test_unknown_control_events_fail_loudly_before_forking(self, database):
        database.simulator.schedule(1.0, lambda: None, label="mystery-control")
        (event,) = self._control_events(database)
        with pytest.raises(SimulationError, match="mystery-control"):
            classify_control_event(event, database)


class TestCaptureBus:
    def test_inactive_instruments_pass_straight_through(self):
        metrics = RecordingMetrics()
        metrics._capture_bus = CaptureBus()  # present but not capturing
        metrics.record_attempt(Protocol.TWO_PHASE_LOCKING)
        base = MetricsCollector()
        base.record_attempt(Protocol.TWO_PHASE_LOCKING)
        assert (
            metrics._by_protocol[Protocol.TWO_PHASE_LOCKING].attempts
            == base._by_protocol[Protocol.TWO_PHASE_LOCKING].attempts
            == 1
        )

    def test_active_bus_captures_instead_of_applying(self):
        bus = CaptureBus()
        metrics = RecordingMetrics()
        metrics._capture_bus = bus
        bus.capturing = True
        bus.begin_event((1.0, 0, (PREFORK_TIME, 7)))
        metrics.record_arrival(Protocol.TWO_PHASE_LOCKING, 2.0)
        metrics.record_attempt(Protocol.TWO_PHASE_LOCKING)
        assert metrics._by_protocol[Protocol.TWO_PHASE_LOCKING].attempts == 0
        entries = bus.drain()
        assert [entry[4] for entry in entries] == ["record_arrival", "record_attempt"]
        # Captures of one event share its emit key and count up in k.
        assert [entry[0] for entry in entries] == [(1.0, 0, (PREFORK_TIME, 7))] * 2
        assert [entry[2] for entry in entries] == [0, 1]

    def test_capture_order_keys_sort_like_the_serial_engine(self):
        """(emit_key, sub, k) tuples from different events sort by the
        emitting event's global order first, then listener index, then call
        order — the merge-order clause of docs/determinism.md."""
        bus = CaptureBus()
        bus.capturing = True
        bus.begin_event((2.0, 0, (PREFORK_TIME, 3)))
        bus.capture("m", "later", ())
        first_event = bus.drain()
        bus.begin_event((1.0, 0, (PREFORK_TIME, 9)))
        bus.capture("m", "earlier-a", ())
        bus.sub = 2
        bus.capture("m", "earlier-b", ())
        second_event = bus.drain()
        merged = sorted(first_event + second_event)
        assert [entry[3:5] for entry in merged] == [
            ("m", "earlier-a"),
            ("m", "earlier-b"),
            ("m", "later"),
        ]

    def test_registry_applies_and_captures(self):
        bus = CaptureBus()
        registry = RecordingRegistry()
        registry._capture_bus = bus
        bus.capturing = True
        bus.begin_event((1.0, 0, (PREFORK_TIME, 1)))
        registry["tid"] = "2PL"
        assert registry["tid"] == "2PL"
        ((_, _, _, channel, name, args, _),) = bus.drain()
        assert (channel, name, args) == ("r", "set", ("tid", "2PL"))
        registry.apply_foreign("other", "T/O")
        assert registry["other"] == "T/O"
        assert bus.drain() == []
