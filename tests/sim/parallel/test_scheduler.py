"""The conservative scheduler: horizons, quiescence, backends, error paths."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.parallel.scheduler import ConservativeScheduler, conservative_horizons

INF = float("inf")


class TestConservativeHorizons:
    def test_all_idle_is_quiescence(self):
        floor, horizons, barrier = conservative_horizons([INF, INF], 0.1)
        assert floor == INF
        assert horizons == [INF, INF]
        assert not barrier

    def test_non_floor_lps_get_floor_plus_lookahead(self):
        floor, horizons, _ = conservative_horizons([1.0, 5.0, 9.0], 0.1)
        assert floor == 1.0
        assert horizons[1] == pytest.approx(1.1)
        assert horizons[2] == pytest.approx(1.1)

    def test_unique_floor_lp_gets_the_wider_asymmetric_bound(self):
        """The floor LP's inbound promises bottom out at the *second* queue.

        EOT_j = min(next_j, floor + L) + L for every other LP, so the floor
        LP may run to min(second, floor + L) + L — strictly wider than the
        floor + L everyone else gets, which is what lets the busiest LP
        stream ahead instead of stalling on its own window.
        """
        floor, horizons, _ = conservative_horizons([1.0, 5.0, 9.0], 0.1)
        # second = 5.0 > floor + L = 1.1, so bound = 1.1 + 0.1.
        assert horizons[0] == pytest.approx(1.2)

    def test_floor_lp_bound_tightens_to_a_near_second_queue(self):
        floor, horizons, _ = conservative_horizons([1.0, 1.05, 9.0], 0.1)
        # second = 1.05 < floor + L = 1.1, so bound = 1.05 + 0.1.
        assert horizons[0] == pytest.approx(1.15)

    def test_tied_floor_lps_all_get_floor_plus_lookahead(self):
        floor, horizons, _ = conservative_horizons([1.0, 1.0, 9.0], 0.1)
        assert horizons[0] == pytest.approx(1.1)
        assert horizons[1] == pytest.approx(1.1)

    def test_zero_lookahead_collapses_to_a_barrier_at_the_floor(self):
        floor, horizons, barrier = conservative_horizons([2.0, 3.0], 0.0)
        assert barrier
        assert floor == 2.0
        assert horizons == [2.0, 2.0]

    def test_single_lp_with_positive_lookahead_never_barriers(self):
        _, horizons, barrier = conservative_horizons([4.0], 0.5)
        assert not barrier
        assert horizons[0] > 4.5  # unbounded by any neighbour's queue


class PingPong:
    """Two LPs volleying a counter until ``rallies`` exchanges happened."""

    def __init__(self, peer, rallies, serve=False):
        self.peer = peer
        self.rallies = rallies
        self.serve = serve
        self.received = []

    def on_start(self, ctx):
        if self.serve:
            ctx.send(self.peer, 0, 0.1)

    def on_event(self, ctx, payload):
        self.received.append((round(ctx.now, 6), payload))
        if payload + 1 < self.rallies:
            ctx.send(self.peer, payload + 1, 0.1)

    def result(self):
        return list(self.received)


class SelfDraining:
    """An LP that schedules a finite local chain, then goes quiet."""

    def __init__(self, chain):
        self.chain = chain
        self.fired = 0

    def on_start(self, ctx):
        ctx.schedule(0.0, "tick")

    def on_event(self, ctx, payload):
        self.fired += 1
        if self.fired < self.chain:
            ctx.schedule(0.5, "tick")

    def result(self):
        return self.fired


def _pingpong_handlers(rallies=10):
    return {
        0: PingPong(peer=1, rallies=rallies, serve=True),
        1: PingPong(peer=0, rallies=rallies),
    }


class TestRun:
    def test_run_returns_per_lp_results(self):
        scheduler = ConservativeScheduler(_pingpong_handlers(6), lookahead=0.1)
        results = scheduler.run()
        # Six volleys alternate: LP 1 sees 0, 2, 4; LP 0 sees 1, 3, 5.
        assert [p for _, p in results[1]] == [0, 2, 4]
        assert [p for _, p in results[0]] == [1, 3, 5]

    def test_null_message_quiescence_ends_the_run(self):
        """Quiet channels must not block termination: the run ends exactly
        when every queue is empty and nothing is in flight, with the
        ``quiesced`` flag set — no timeout, no stuck null-message loop."""
        scheduler = ConservativeScheduler(_pingpong_handlers(4), lookahead=0.1)
        scheduler.run()
        assert scheduler.stats["quiesced"] is True
        assert scheduler.stats["events"] == 4

    def test_barrier_mode_runs_and_quiesces_at_zero_lookahead(self):
        handlers = {0: SelfDraining(5), 1: SelfDraining(3)}
        scheduler = ConservativeScheduler(handlers, lookahead=0.0)
        results = scheduler.run()
        assert results == {0: 5, 1: 3}
        assert scheduler.stats["barrier_mode"] is True
        assert scheduler.stats["barrier_windows"] == scheduler.stats["windows"] > 0
        assert scheduler.stats["quiesced"] is True

    def test_until_bound_stops_before_quiescence(self):
        handlers = {0: SelfDraining(100), 1: SelfDraining(100)}
        scheduler = ConservativeScheduler(handlers, lookahead=0.1)
        scheduler.run(until=10.0)
        assert scheduler.stats["quiesced"] is False
        assert 0 < scheduler.stats["events"] < 200

    def test_max_windows_guard_trips_on_livelock(self):
        handlers = {0: SelfDraining(10_000), 1: SelfDraining(10_000)}
        scheduler = ConservativeScheduler(handlers, lookahead=0.1)
        with pytest.raises(SimulationError, match="exceeded"):
            scheduler.run(max_windows=3)

    def test_stats_expose_the_window_accounting(self):
        scheduler = ConservativeScheduler(_pingpong_handlers(10), lookahead=0.1)
        scheduler.run()
        stats = scheduler.stats
        assert stats["lookahead"] == 0.1
        assert stats["barrier_mode"] is False
        assert stats["workers"] == 0
        assert stats["events_per_lp"] == {0: 5, 1: 5}
        assert stats["windows"] >= 10  # one volley lands per window here


class TestErrors:
    def test_empty_handler_map_is_rejected(self):
        with pytest.raises(SimulationError, match="at least one LP"):
            ConservativeScheduler({}, lookahead=0.1)

    def test_negative_workers_is_rejected(self):
        with pytest.raises(SimulationError, match="non-negative"):
            ConservativeScheduler({0: SelfDraining(1)}, lookahead=0.1, workers=-1)

    def test_send_to_unknown_lp_is_an_error(self):
        class Misaddressed:
            def on_start(self, ctx):
                ctx.send(99, "lost", 0.2)

            def on_event(self, ctx, payload):
                """Unused."""

        scheduler = ConservativeScheduler({0: Misaddressed()}, lookahead=0.1)
        with pytest.raises(SimulationError, match="unknown LP 99"):
            scheduler.run()


class TestMultiprocessingBackend:
    """Inline and multiprocessing executions must be the same simulation."""

    def _run(self, workers, rallies=12):
        scheduler = ConservativeScheduler(
            _pingpong_handlers(rallies), lookahead=0.1, workers=workers
        )
        scheduler.run()
        return scheduler.results, scheduler.stats

    def test_two_workers_match_inline(self):
        inline_results, inline_stats = self._run(0)
        mp_results, mp_stats = self._run(2)
        assert mp_results == inline_results
        assert mp_stats["events"] == inline_stats["events"]
        assert mp_stats["windows"] == inline_stats["windows"]
        assert mp_stats["events_per_lp"] == inline_stats["events_per_lp"]

    def test_worker_count_clamps_to_lp_count(self):
        scheduler = ConservativeScheduler(
            _pingpong_handlers(4), lookahead=0.1, workers=16
        )
        scheduler.run()
        assert scheduler.stats["workers"] == 2

    def test_barrier_mode_matches_inline_under_multiprocessing(self):
        handlers = {0: SelfDraining(4), 1: SelfDraining(6)}
        inline = ConservativeScheduler(dict(handlers), lookahead=0.0)
        inline.run()
        mp = ConservativeScheduler(
            {0: SelfDraining(4), 1: SelfDraining(6)}, lookahead=0.0, workers=2
        )
        mp.run()
        assert mp.results == inline.results
        assert mp.stats["barrier_windows"] == inline.stats["barrier_windows"]
