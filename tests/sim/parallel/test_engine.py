"""The partitioned engine: routing, merge order, promises, window accounting."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.parallel.engine import PartitionedSimulator


def _noop():
    """Payload-free event body."""


class TestConstruction:
    def test_requires_at_least_one_site(self):
        with pytest.raises(SimulationError, match="at least one site"):
            PartitionedSimulator(num_sites=0, lookahead=0.02)

    def test_starts_with_no_pending_events(self):
        sim = PartitionedSimulator(num_sites=3, lookahead=0.02)
        assert sim.pending_events == 0


class TestRouting:
    def test_unattributed_events_go_to_the_control_lp(self):
        sim = PartitionedSimulator(num_sites=2, lookahead=0.02)
        sim.schedule(1.0, _noop, label="detector-scan")
        sim.run()
        assert sim.engine_stats()["events_per_lp"] == {"control": 1}

    def test_out_of_range_sites_go_to_the_control_lp(self):
        sim = PartitionedSimulator(num_sites=2, lookahead=0.02)
        sim.schedule(1.0, _noop, site=7, label="weird")
        sim.run()
        assert sim.engine_stats()["events_per_lp"] == {"control": 1}

    def test_site_events_land_on_their_own_partition(self):
        sim = PartitionedSimulator(num_sites=3, lookahead=0.02)
        sim.schedule(1.0, _noop, site=0)
        sim.schedule(1.0, _noop, site=2)
        sim.schedule(1.0, _noop, site=2)
        sim.run()
        assert sim.engine_stats()["events_per_lp"] == {"site0": 1, "site2": 2}


class TestMergeOrder:
    def test_cross_partition_order_matches_the_serial_order(self):
        """Time, then priority, then global insertion order — across queues."""
        fired = []
        sim = PartitionedSimulator(num_sites=2, lookahead=0.02)
        sim.schedule(2.0, lambda: fired.append("late-site0"), site=0)
        sim.schedule(1.0, lambda: fired.append("tie-first"), site=1)
        sim.schedule(1.0, lambda: fired.append("tie-second"), site=0)
        sim.schedule(1.0, lambda: fired.append("urgent"), priority=-1, site=0)
        sim.run()
        assert fired == ["urgent", "tie-first", "tie-second", "late-site0"]

    def test_insertion_ties_break_globally_not_per_partition(self):
        """The shared sequence counter is what keeps parallel == serial: a
        per-partition counter would re-order same-time same-priority events
        scheduled alternately onto different sites."""
        fired = []
        sim = PartitionedSimulator(num_sites=2, lookahead=0.02)
        for index, site in enumerate([1, 0, 1, 0]):
            sim.schedule(1.0, lambda i=index: fired.append(i), site=site)
        sim.run()
        assert fired == [0, 1, 2, 3]


class TestLookaheadPromise:
    def test_cross_site_send_below_the_lookahead_is_rejected(self):
        sim = PartitionedSimulator(num_sites=2, lookahead=0.02)

        def cheat():
            sim.schedule(0.001, _noop, site=1, label="too-soon")

        sim.schedule(1.0, cheat, site=0)
        with pytest.raises(SimulationError, match="lookahead violation"):
            sim.run()

    def test_cross_site_send_at_the_lookahead_is_allowed(self):
        sim = PartitionedSimulator(num_sites=2, lookahead=0.02)
        sim.schedule(1.0, lambda: sim.schedule(0.02, _noop, site=1), site=0)
        assert sim.run() == pytest.approx(1.02)
        assert sim.engine_stats()["promise_checks"] == 1

    def test_same_site_scheduling_is_exempt(self):
        """Site-local work (lock grants, queue pops) has no delivery latency."""
        sim = PartitionedSimulator(num_sites=2, lookahead=0.02)
        sim.schedule(1.0, lambda: sim.schedule(0.0, _noop, site=0), site=0)
        sim.run()
        assert sim.engine_stats()["promise_checks"] == 0

    def test_control_crossings_are_exempt(self):
        """Detector scans and fault events are centralised machinery, not
        site-to-site messages; they may fire without network latency."""
        sim = PartitionedSimulator(num_sites=2, lookahead=0.02)
        sim.schedule(1.0, lambda: sim.schedule(0.0, _noop, label="scan"), site=0)
        sim.schedule(2.0, lambda: sim.schedule(0.0, _noop, site=1), label="fault")
        sim.run()
        assert sim.engine_stats()["promise_checks"] == 0

    def test_promise_marker_clears_when_a_handler_raises(self):
        sim = PartitionedSimulator(num_sites=2, lookahead=0.02)

        def explode():
            raise RuntimeError("boom")

        sim.schedule(1.0, explode, site=0)
        with pytest.raises(RuntimeError):
            sim.run()
        # A later control-scheduled cross-site event must not be charged to
        # the site LP whose handler died.
        sim.schedule(0.0, _noop, site=1)
        sim.run()
        assert sim.engine_stats()["promise_checks"] == 0


class TestWindows:
    def test_events_within_one_lookahead_share_a_window(self):
        sim = PartitionedSimulator(num_sites=2, lookahead=0.5)
        sim.schedule(1.0, _noop, site=0)
        sim.schedule(1.2, _noop, site=1)
        sim.schedule(2.0, _noop, site=0)
        sim.run()
        stats = sim.engine_stats()
        assert stats["windows"] == 2
        assert stats["barrier_windows"] == 0
        assert stats["mean_active_lps"] == pytest.approx(1.5)  # {0,1} then {0}

    def test_zero_lookahead_runs_barrier_windows(self):
        sim = PartitionedSimulator(num_sites=2, lookahead=0.0)
        sim.schedule(1.0, _noop, site=0)
        sim.schedule(1.0, _noop, site=1)
        sim.schedule(2.0, _noop, site=0)
        sim.run()
        stats = sim.engine_stats()
        assert stats["barrier_mode"] is True
        assert stats["windows"] == stats["barrier_windows"] == 2
        assert stats["mean_active_lps"] == pytest.approx(1.5)

    def test_single_site_degrades_to_serial_semantics(self):
        """One site: every event shares the one LP with the control queue,
        there are no cross-site messages, no promise checks, and the merge
        is trivially the serial order."""
        fired = []
        sim = PartitionedSimulator(num_sites=1, lookahead=0.02)
        sim.schedule(1.0, lambda: fired.append("a"), site=0)
        sim.schedule(1.5, lambda: fired.append("scan"))
        sim.schedule(2.0, lambda: fired.append("b"), site=0)
        sim.run()
        stats = sim.engine_stats()
        assert fired == ["a", "scan", "b"]
        assert stats["promise_checks"] == 0
        assert stats["mean_active_lps"] == pytest.approx(1.0)

    def test_engine_stats_shape(self):
        sim = PartitionedSimulator(num_sites=2, lookahead=0.02)
        sim.schedule(1.0, _noop, site=0)
        sim.run()
        stats = sim.engine_stats()
        assert stats["engine"] == "parallel"
        assert stats["lookahead"] == 0.02
        assert stats["control_events"] == 0
        assert set(stats) == {
            "engine",
            "lookahead",
            "barrier_mode",
            "barrier_fallback",
            "windows",
            "barrier_windows",
            "events_per_lp",
            "control_events",
            "mean_active_lps",
            "promise_checks",
        }

    def test_zero_lookahead_reports_barrier_fallback(self):
        """``lookahead=0`` degrades to one barrier window per timestamp; the
        degradation must be *named* in the stats, not inferred from the
        window counters."""
        sim = PartitionedSimulator(num_sites=2, lookahead=0.0)
        sim.schedule(1.0, _noop, site=0)
        sim.schedule(1.0, _noop, site=1)
        sim.run()
        stats = sim.engine_stats()
        assert stats["barrier_fallback"] is True
        assert stats["barrier_mode"] is True
        assert stats["windows"] == stats["barrier_windows"] > 0

    def test_positive_lookahead_reports_no_barrier_fallback(self):
        sim = PartitionedSimulator(num_sites=2, lookahead=0.02)
        sim.schedule(1.0, _noop, site=0)
        sim.run()
        assert sim.engine_stats()["barrier_fallback"] is False


class TestSimulatorContract:
    """The engine stays a drop-in Simulator: run bounds, step, stop."""

    def test_until_bound_is_respected(self):
        sim = PartitionedSimulator(num_sites=2, lookahead=0.02)
        fired = []
        sim.schedule(1.0, lambda: fired.append(1), site=0)
        sim.schedule(5.0, lambda: fired.append(5), site=1)
        assert sim.run(until=2.0) == 2.0
        assert fired == [1]
        assert sim.pending_events == 1

    def test_step_pops_the_global_minimum(self):
        sim = PartitionedSimulator(num_sites=2, lookahead=0.02)
        fired = []
        sim.schedule(2.0, lambda: fired.append("b"), site=0)
        sim.schedule(1.0, lambda: fired.append("a"), site=1)
        assert sim.step() is True
        assert fired == ["a"]
        assert sim.now == 1.0

    def test_empty_run_returns_immediately(self):
        sim = PartitionedSimulator(num_sites=2, lookahead=0.02)
        assert sim.step() is False
        assert sim.engine_stats()["windows"] == 0
