"""Inter-LP channels: FIFO stamping, clock promises, deterministic merge."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.parallel.channels import ChannelState, TimedMessage, merge_inbox


class TestTimedMessageOrdering:
    def test_orders_by_time_first(self):
        early = TimedMessage(time=1.0, src=5, seq=9, dst=0)
        late = TimedMessage(time=2.0, src=0, seq=0, dst=0)
        assert early < late

    def test_ties_break_by_source_then_sequence(self):
        a = TimedMessage(time=1.0, src=0, seq=1, dst=2)
        b = TimedMessage(time=1.0, src=1, seq=0, dst=2)
        c = TimedMessage(time=1.0, src=1, seq=1, dst=2)
        assert a < b < c

    def test_payload_and_destination_do_not_affect_order(self):
        a = TimedMessage(time=1.0, src=0, seq=0, dst=9, payload="zzz")
        b = TimedMessage(time=1.0, src=0, seq=1, dst=1, payload="aaa")
        assert a < b


class TestChannelState:
    def test_stamp_assigns_fifo_sequence_numbers(self):
        channel = ChannelState(src=0, dst=1)
        first = channel.stamp(1.0, "a")
        second = channel.stamp(1.0, "b")
        assert (first.seq, second.seq) == (0, 1)

    def test_stamp_advances_the_channel_clock(self):
        channel = ChannelState(src=0, dst=1)
        channel.stamp(3.5)
        assert channel.clock == 3.5

    def test_stamping_behind_the_clock_is_a_causality_error(self):
        """A send below the standing promise would retract it — hard error."""
        channel = ChannelState(src=0, dst=1)
        channel.stamp(2.0)
        with pytest.raises(SimulationError, match="cannot send"):
            channel.stamp(1.0)

    def test_stamping_exactly_at_the_clock_is_allowed(self):
        channel = ChannelState(src=0, dst=1)
        channel.stamp(2.0)
        message = channel.stamp(2.0)
        assert message.seq == 1


class TestPromises:
    def test_promise_emits_a_null_message(self):
        channel = ChannelState(src=0, dst=1)
        null = channel.promise(4.0)
        assert null is not None and null.null
        assert channel.clock == 4.0

    def test_stale_promise_is_suppressed(self):
        """A promise at or below the clock adds nothing and must not send."""
        channel = ChannelState(src=0, dst=1)
        channel.stamp(4.0)
        assert channel.promise(4.0) is None
        assert channel.promise(3.0) is None

    def test_promise_keeps_fifo_numbering_with_data(self):
        channel = ChannelState(src=0, dst=1)
        data = channel.stamp(1.0, "x")
        null = channel.promise(2.0)
        assert null is not None
        assert (data.seq, null.seq) == (0, 1)


class TestMergeInbox:
    def test_merge_is_independent_of_arrival_order(self):
        """Delivery order must not depend on how workers returned outboxes."""
        messages = [
            TimedMessage(time=2.0, src=0, seq=1, dst=3),
            TimedMessage(time=1.0, src=1, seq=0, dst=3),
            TimedMessage(time=1.0, src=0, seq=0, dst=3),
            TimedMessage(time=2.0, src=1, seq=1, dst=3),
        ]
        forward = merge_inbox(list(messages))
        backward = merge_inbox(list(reversed(messages)))
        assert forward == backward
        assert [(m.time, m.src, m.seq) for m in forward] == [
            (1.0, 0, 0),
            (1.0, 1, 0),
            (2.0, 0, 1),
            (2.0, 1, 1),
        ]

    def test_merge_preserves_per_channel_fifo(self):
        channel = ChannelState(src=2, dst=0)
        first = channel.stamp(1.0, "early")
        second = channel.stamp(1.0, "late")
        merged = merge_inbox([second, first])
        assert [m.payload for m in merged] == ["early", "late"]
