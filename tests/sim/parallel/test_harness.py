"""The site-sharded harness: determinism, conservation, backend identity."""

import pytest

from repro.sim.parallel import ConservativeScheduler
from repro.sim.parallel.harness import SiteShardHandler


def _handlers(sites=3, transactions=12, seed=11, **kwargs):
    return {
        site: SiteShardHandler(
            site=site,
            num_sites=sites,
            transactions=transactions,
            seed=seed,
            **kwargs,
        )
        for site in range(sites)
    }


def _run(workers=0, **kwargs):
    scheduler = ConservativeScheduler(_handlers(**kwargs), lookahead=0.01, workers=workers)
    scheduler.run()
    return scheduler.results, scheduler.stats


class TestInlineRun:
    def test_every_shard_commits_its_transactions(self):
        results, _ = _run()
        for site, shard in results.items():
            assert shard["site"] == site
            assert shard["committed"] == 12

    def test_grants_are_conserved(self):
        """Every lock every transaction planned is granted exactly once."""
        results, _ = _run(ops_per_transaction=4)
        total_grants = sum(shard["grants"] for shard in results.values())
        # Plans deduplicate copies, so the total is bounded by txns * ops but
        # must match the grant events the issuers observed.
        observed = sum(shard["events"] for shard in results.values())
        assert 0 < total_grants <= 3 * 12 * 4
        assert observed > total_grants  # events also count requests/releases

    def test_same_seed_is_byte_deterministic(self):
        first, _ = _run(seed=11)
        second, _ = _run(seed=11)
        assert first == second

    def test_different_seeds_give_different_digests(self):
        first, _ = _run(seed=11)
        second, _ = _run(seed=12)
        digests = lambda results: {s: r["digest"] for s, r in results.items()}  # noqa: E731
        assert digests(first) != digests(second)

    def test_fully_local_workload_never_crosses_shards(self):
        scheduler = ConservativeScheduler(
            _handlers(remote_fraction=0.0), lookahead=0.01
        )
        scheduler.run()
        # With no cross-shard traffic every window belongs to local queues;
        # the run still quiesces and commits everything.
        assert scheduler.stats["quiesced"] is True
        assert all(r["committed"] == 12 for r in scheduler.results.values())


class TestBackendIdentity:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_multiprocessing_matches_inline(self, workers):
        """The headline property: per-shard digests (the full event order)
        are identical under the inline backend and worker processes."""
        inline, inline_stats = _run(0)
        multi, multi_stats = _run(workers)
        assert multi == inline
        assert multi_stats["events"] == inline_stats["events"]
        assert multi_stats["windows"] == inline_stats["windows"]

    def test_spin_does_not_change_the_simulation(self):
        """CPU burn is pure wall-clock cost; digests must not see it."""
        calm, _ = _run(0, spin=0)
        busy, _ = _run(0, spin=500)
        assert calm == busy
