"""Logical processes: scheduling bounds, window advance, null delivery."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.parallel.channels import TimedMessage
from repro.sim.parallel.lp import LogicalProcess


class Recorder:
    """Handler that records every event it executes as ``(now, payload)``."""

    def __init__(self, seeds=()):
        self.seeds = tuple(seeds)
        self.log = []

    def on_start(self, ctx):
        for time, payload in self.seeds:
            ctx.schedule(time, payload)

    def on_event(self, ctx, payload):
        self.log.append((ctx.now, payload))

    def result(self):
        return list(self.log)


def _started(handler, lp_id=0, lookahead=0.1):
    lp = LogicalProcess(lp_id, handler, lookahead)
    lp.start()
    return lp


class TestScheduling:
    def test_on_start_seeds_the_local_queue(self):
        lp = _started(Recorder([(1.0, "a"), (0.5, "b")]))
        assert lp.next_time() == 0.5

    def test_negative_local_delay_is_rejected(self):
        class BadHandler:
            def on_start(self, ctx):
                ctx.schedule(-0.1, "oops")

            def on_event(self, ctx, payload):
                """Unused."""

        with pytest.raises(SimulationError, match="in the past"):
            _started(BadHandler())

    def test_send_below_lookahead_is_rejected(self):
        """The output promise: no cross-LP send inside the lookahead bound."""

        class EagerSender:
            def on_start(self, ctx):
                ctx.schedule(0.0, "go")

            def on_event(self, ctx, payload):
                ctx.send(1, "too-soon", 0.05)

        lp = _started(EagerSender(), lookahead=0.1)
        with pytest.raises(SimulationError, match="below the lookahead"):
            lp.advance(1.0, inclusive=False)

    def test_send_at_exactly_the_lookahead_is_allowed(self):
        class BoundarySender:
            def on_start(self, ctx):
                ctx.schedule(0.0, "go")

            def on_event(self, ctx, payload):
                ctx.send(1, "on-time", 0.1)

        lp = _started(BoundarySender(), lookahead=0.1)
        lp.advance(1.0, inclusive=False)
        outbox = lp.take_outbox()
        assert len(outbox) == 1
        assert outbox[0].time == pytest.approx(0.1)
        assert outbox[0].dst == 1

    def test_idle_lp_reports_infinite_next_time(self):
        lp = _started(Recorder())
        assert lp.next_time() == float("inf")


class TestAdvance:
    def test_exclusive_bound_leaves_events_at_the_bound(self):
        handler = Recorder([(1.0, "a"), (2.0, "b")])
        lp = _started(handler)
        fired = lp.advance(2.0, inclusive=False)
        assert fired == 1
        assert handler.log == [(1.0, "a")]
        assert lp.next_time() == 2.0

    def test_inclusive_bound_fires_events_at_the_bound(self):
        """Barrier windows execute exactly the floor instant, ties included."""
        handler = Recorder([(1.0, "a"), (1.0, "b"), (2.0, "c")])
        lp = _started(handler)
        fired = lp.advance(1.0, inclusive=True)
        assert fired == 2
        assert handler.log == [(1.0, "a"), (1.0, "b")]

    def test_same_instant_spawns_drain_within_an_inclusive_window(self):
        """An event at the barrier instant may spawn more ties; all must fire."""

        class Spawner:
            def __init__(self):
                self.fired = []

            def on_start(self, ctx):
                ctx.schedule(1.0, "parent")

            def on_event(self, ctx, payload):
                self.fired.append(payload)
                if payload == "parent":
                    ctx.schedule(0.0, "child")

        handler = Spawner()
        lp = LogicalProcess(0, handler, 0.0)
        lp.start()
        assert lp.advance(1.0, inclusive=True) == 2
        assert handler.fired == ["parent", "child"]

    def test_quiet_advance_moves_the_clock_to_the_bound(self):
        """An empty window still advances the LP's promise to its neighbours."""
        lp = _started(Recorder())
        lp.advance(7.5, inclusive=False)
        assert lp.now == 7.5

    def test_events_processed_counts_across_windows(self):
        handler = Recorder([(1.0, "a"), (2.0, "b"), (3.0, "c")])
        lp = _started(handler)
        lp.advance(2.5, inclusive=False)
        lp.advance(4.0, inclusive=False)
        assert lp.events_processed == 3


class TestDelivery:
    def test_data_message_enters_the_local_queue(self):
        handler = Recorder()
        lp = _started(handler)
        lp.deliver(TimedMessage(time=3.0, src=1, seq=0, dst=0, payload="hello"))
        lp.advance(4.0, inclusive=False)
        assert handler.log == [(3.0, "hello")]

    def test_null_message_schedules_nothing(self):
        """Nulls are pure clock promises: no event, no handler call."""
        handler = Recorder()
        lp = _started(handler)
        lp.deliver(TimedMessage(time=3.0, src=1, seq=0, dst=0, null=True))
        assert lp.next_time() == float("inf")
        lp.advance(4.0, inclusive=False)
        assert handler.log == []

    def test_take_outbox_drains(self):
        class Sender:
            def on_start(self, ctx):
                ctx.schedule(0.0, "go")

            def on_event(self, ctx, payload):
                ctx.send(1, "out", 0.2)

        lp = _started(Sender(), lookahead=0.1)
        lp.advance(1.0, inclusive=False)
        assert len(lp.take_outbox()) == 1
        assert lp.take_outbox() == []

    def test_result_defaults_to_none_without_a_result_method(self):
        class Minimal:
            def on_start(self, ctx):
                """No seeds."""

            def on_event(self, ctx, payload):
                """Unused."""

        lp = LogicalProcess(0, Minimal(), 0.1)
        assert lp.result() is None
