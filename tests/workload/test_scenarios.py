"""The named scenario registry and its end-to-end behaviour."""

import pytest

from repro.common.errors import ConfigurationError
from repro.workload.scenarios import (
    Scenario,
    all_scenarios,
    get_scenario,
    run_scenario,
    scenario_names,
)

#: Scenarios that must exist for the CLI examples and DESIGN.md to hold.
EXPECTED_SCENARIOS = (
    "uniform-baseline",
    "zipf-hotspot",
    "read-mostly-analytics",
    "bursty-arrivals",
    "site-skewed",
    "bimodal-churn",
)

#: The fault-scenario family behind E10 (two-phase commit + site failures).
FAULT_SCENARIOS = (
    "site-blackout",
    "flaky-links",
    "crash-storm",
)


class TestRegistry:
    def test_expected_scenarios_registered(self):
        names = scenario_names()
        for name in EXPECTED_SCENARIOS:
            assert name in names

    def test_descriptions_present(self):
        for scenario in all_scenarios():
            assert scenario.description

    def test_get_scenario_roundtrip(self):
        for name in scenario_names():
            assert get_scenario(name).name == name

    def test_unknown_scenario_rejected_with_known_names(self):
        with pytest.raises(ConfigurationError, match="zipf-hotspot"):
            get_scenario("definitely-not-a-scenario")

    def test_scenario_rejects_protocol_and_dynamic_together(self):
        with pytest.raises(ConfigurationError):
            Scenario(name="x", description="y", protocol="PA", dynamic_selection=True)

    def test_configured_overrides_do_not_mutate_the_registry(self):
        scenario = get_scenario("zipf-hotspot")
        shrunk = scenario.configured(transactions=10, arrival_rate=5.0)
        assert shrunk.workload.num_transactions == 10
        assert shrunk.workload.arrival_rate == 5.0
        assert get_scenario("zipf-hotspot").workload.num_transactions == 300

    def test_configured_without_overrides_returns_self(self):
        scenario = get_scenario("site-skewed")
        assert scenario.configured() is scenario


class TestScenarioRuns:
    @pytest.mark.parametrize("name", EXPECTED_SCENARIOS)
    def test_every_scenario_runs_and_is_serializable(self, name):
        result = run_scenario(name, transactions=30, seeds=(0,))
        assert result.label == name
        assert result.all_serializable
        assert result.all_committed

    @pytest.mark.parametrize("name", FAULT_SCENARIOS)
    def test_fault_scenarios_ride_out_their_failures(self, name):
        scenario = get_scenario(name)
        assert scenario.system.commit.protocol == "two-phase"
        assert scenario.system.faults is not None
        result = run_scenario(name, transactions=40, seeds=(0,))
        assert result.label == name
        assert result.all_serializable
        assert result.all_committed

    def test_parallel_run_matches_serial_bit_for_bit(self):
        serial = run_scenario("bursty-arrivals", transactions=40, seeds=(0, 1), jobs=1)
        parallel = run_scenario("bursty-arrivals", transactions=40, seeds=(0, 1), jobs=2)
        assert serial == parallel
