"""Drift schedules: resolution, the migrating hot spot, and generator wiring."""

import random

import pytest

from repro.common.config import DriftConfig, DriftSegment, SystemConfig, WorkloadConfig
from repro.common.errors import ConfigurationError
from repro.workload.access_patterns import UniformAccessPattern, ZipfianAccessPattern
from repro.workload.drift import DriftResolver, MigratingHotspotOverlay
from repro.workload.generator import TransactionGenerator


def make_workload(**overrides):
    defaults = dict(arrival_rate=20.0, num_transactions=60, min_size=2, max_size=4, seed=7)
    defaults.update(overrides)
    return WorkloadConfig(**defaults)


class TestDriftConfigValidation:
    def test_segments_must_be_ordered(self):
        with pytest.raises(ConfigurationError):
            DriftConfig(segments=(DriftSegment(at=0.5), DriftSegment(at=0.2)))

    def test_duplicate_positions_rejected(self):
        with pytest.raises(ConfigurationError):
            DriftConfig(segments=(DriftSegment(at=0.5), DriftSegment(at=0.5)))

    def test_empty_schedule_rejected(self):
        with pytest.raises(ConfigurationError):
            DriftConfig(segments=())

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            DriftConfig(segments=(DriftSegment(at=0.5),), mode="sudden")

    def test_segment_position_must_be_a_fraction(self):
        with pytest.raises(ConfigurationError):
            DriftSegment(at=1.0)

    def test_arrival_rate_drift_needs_poisson(self):
        drift = DriftConfig(segments=(DriftSegment(at=0.5, arrival_rate=40.0),))
        with pytest.raises(ConfigurationError):
            make_workload(arrival_process="bursty", drift=drift)

    def test_segment_no_arrival_reaches_is_rejected(self):
        # With 10 transactions the largest stream fraction is 9/10, so a
        # segment at 0.95 would silently never fire; the config refuses it.
        drift = DriftConfig(segments=(DriftSegment(at=0.95, read_fraction=0.1),))
        with pytest.raises(ConfigurationError):
            make_workload(num_transactions=10, drift=drift)
        make_workload(num_transactions=40, drift=drift)  # 38/40 >= 0.95: fine

    def test_onset_and_settled(self):
        drift = DriftConfig(
            segments=(DriftSegment(at=0.2, arrival_rate=5.0), DriftSegment(at=0.8))
        )
        assert drift.onset == 0.2
        assert drift.settled == 0.8


class TestDriftResolver:
    def test_piecewise_holds_then_jumps(self):
        workload = make_workload(
            read_fraction=0.9,
            drift=DriftConfig(
                mode="piecewise",
                segments=(DriftSegment(at=0.5, read_fraction=0.2),),
            ),
        )
        resolver = DriftResolver(workload)
        assert resolver.resolve(0.0).read_fraction == 0.9
        assert resolver.resolve(0.49).read_fraction == 0.9
        assert resolver.resolve(0.5).read_fraction == 0.2
        assert resolver.resolve(1.0).read_fraction == 0.2

    def test_smooth_interpolates_between_control_points(self):
        workload = make_workload(
            arrival_rate=10.0,
            drift=DriftConfig(
                mode="smooth",
                segments=(
                    DriftSegment(at=0.2, arrival_rate=10.0),
                    DriftSegment(at=0.8, arrival_rate=70.0),
                ),
            ),
        )
        resolver = DriftResolver(workload)
        assert resolver.resolve(0.0).arrival_rate == 10.0
        assert resolver.resolve(0.5).arrival_rate == pytest.approx(40.0)
        assert resolver.resolve(0.8).arrival_rate == 70.0
        assert resolver.resolve(1.0).arrival_rate == 70.0

    def test_unnamed_knobs_inherit_the_base_value(self):
        workload = make_workload(
            read_fraction=0.7,
            drift=DriftConfig(segments=(DriftSegment(at=0.3, arrival_rate=50.0),)),
        )
        resolver = DriftResolver(workload)
        assert resolver.resolve(0.9).read_fraction == 0.7

    def test_resolver_requires_a_schedule(self):
        with pytest.raises(ConfigurationError):
            DriftResolver(make_workload())


class TestMigratingHotspotOverlay:
    def test_draws_are_distinct_sorted_and_in_range(self):
        overlay = MigratingHotspotOverlay(UniformAccessPattern(32), 32)
        resolver = DriftResolver(
            make_workload(
                drift=DriftConfig(
                    segments=(
                        DriftSegment(
                            at=0.0,
                            hotspot_probability=0.9,
                            hotspot_fraction=0.2,
                            hotspot_center=0.5,
                        ),
                    )
                )
            )
        )
        overlay.set_regime(resolver.resolve(1.0))
        rng = random.Random(3)
        for count in (1, 4, 16, 32):
            items = overlay.draw(rng, count)
            assert items == sorted(items)
            assert len(items) == len(set(items)) == count
            assert all(0 <= item < 32 for item in items)

    def test_hot_window_attracts_most_draws(self):
        overlay = MigratingHotspotOverlay(UniformAccessPattern(100), 100)
        resolver = DriftResolver(
            make_workload(
                drift=DriftConfig(
                    segments=(
                        DriftSegment(
                            at=0.0,
                            hotspot_probability=0.9,
                            hotspot_fraction=0.1,
                            hotspot_center=0.75,
                        ),
                    )
                )
            )
        )
        overlay.set_regime(resolver.resolve(1.0))
        start, size = overlay.window()
        window = {(start + offset) % 100 for offset in range(size)}
        rng = random.Random(5)
        hits = sum(1 for _ in range(500) if overlay.draw(rng, 1)[0] in window)
        assert hits > 350  # ~90% expected, far above the uniform 10%

    def test_window_wraps_around_the_item_space(self):
        overlay = MigratingHotspotOverlay(UniformAccessPattern(64), 64)
        resolver = DriftResolver(
            make_workload(
                drift=DriftConfig(
                    segments=(
                        DriftSegment(
                            at=0.0,
                            hotspot_probability=1.0,
                            hotspot_fraction=0.125,
                            hotspot_center=0.99,
                        ),
                    )
                )
            )
        )
        overlay.set_regime(resolver.resolve(1.0))
        start, size = overlay.window()
        window = {(start + offset) % 64 for offset in range(size)}
        assert any(item < 8 for item in window) and any(item > 55 for item in window)

    def test_composes_with_a_zipfian_base(self):
        overlay = MigratingHotspotOverlay(ZipfianAccessPattern(48, theta=0.9), 48)
        resolver = DriftResolver(
            make_workload(
                drift=DriftConfig(
                    segments=(
                        DriftSegment(
                            at=0.0,
                            hotspot_probability=0.5,
                            hotspot_fraction=0.1,
                            hotspot_center=0.5,
                        ),
                    )
                )
            )
        )
        overlay.set_regime(resolver.resolve(1.0))
        rng = random.Random(9)
        items = overlay.draw(rng, 10)
        assert len(set(items)) == 10


class TestGeneratorWithDrift:
    def test_no_op_schedule_reproduces_the_stationary_stream(self):
        system = SystemConfig(num_sites=3, num_items=48, seed=2)
        base = make_workload(num_transactions=80)
        # Segments that name no knob leave every regime value at the base.
        noop = base.with_overrides(
            drift=DriftConfig(segments=(DriftSegment(at=0.3), DriftSegment(at=0.7)))
        )
        stationary = TransactionGenerator(system, base).generate()
        drifting = TransactionGenerator(system, noop).generate()
        assert stationary == drifting

    def test_drift_boundaries_are_recorded_in_order(self):
        system = SystemConfig(num_sites=2, num_items=32, seed=2)
        workload = make_workload(
            num_transactions=100,
            drift=DriftConfig(
                segments=(
                    DriftSegment(at=0.25, read_fraction=0.1),
                    DriftSegment(at=0.75, read_fraction=0.9),
                )
            ),
        )
        generator = TransactionGenerator(system, workload)
        specs = generator.generate()
        boundaries = generator.drift_boundaries()
        assert len(boundaries) == 2
        assert 0.0 < boundaries[0] < boundaries[1] <= specs[-1].arrival_time

    def test_mix_flip_changes_the_read_share(self):
        system = SystemConfig(num_sites=2, num_items=32, seed=2)
        workload = make_workload(
            num_transactions=200,
            read_fraction=0.95,
            drift=DriftConfig(
                mode="piecewise",
                segments=(DriftSegment(at=0.5, read_fraction=0.05),),
            ),
        )
        specs = TransactionGenerator(system, workload).generate()
        front = specs[: len(specs) // 2]
        back = specs[len(specs) // 2 :]

        def read_share(group):
            reads = sum(spec.num_reads for spec in group)
            writes = sum(spec.num_writes for spec in group)
            return reads / (reads + writes)

        assert read_share(front) > 0.8
        assert read_share(back) < 0.2

    def test_load_ramp_compresses_interarrivals(self):
        system = SystemConfig(num_sites=2, num_items=32, seed=2)
        workload = make_workload(
            num_transactions=200,
            arrival_rate=5.0,
            drift=DriftConfig(
                mode="smooth",
                segments=(
                    DriftSegment(at=0.2, arrival_rate=5.0),
                    DriftSegment(at=0.9, arrival_rate=80.0),
                ),
            ),
        )
        specs = TransactionGenerator(system, workload).generate()
        times = [spec.arrival_time for spec in specs]
        gaps = [b - a for a, b in zip(times, times[1:])]
        early = sum(gaps[:30]) / 30
        late = sum(gaps[-30:]) / 30
        assert late < early / 4

    def test_base_hotspot_is_not_applied_twice_under_drift(self):
        # Regression: with a base hotspot_probability > 0 AND a drifted
        # hotspot knob, the overlay's cold draws must delegate to the
        # *un-skewed* base pattern — otherwise the hot region is hit with
        # the configured probability twice (overlay + legacy pattern).
        system = SystemConfig(num_sites=2, num_items=100, seed=2)
        workload = make_workload(
            num_transactions=400,
            min_size=1,
            max_size=1,
            hotspot_probability=0.4,
            hotspot_fraction=0.1,
            drift=DriftConfig(
                mode="piecewise",
                segments=(DriftSegment(at=0.9, hotspot_center=0.8),),
            ),
        )
        specs = TransactionGenerator(system, workload).generate()
        pre_drift = specs[: int(len(specs) * 0.85)]
        # The base hot region is the front hotspot_fraction of the items.
        hits = sum(
            1 for spec in pre_drift for item in spec.accessed_items() if item < 10
        )
        total = sum(len(spec.accessed_items()) for spec in pre_drift)
        rate = hits / total
        # Expected ~ 0.4 + 0.6 * 0.1 = 0.46; the double-application bug
        # pushed this to ~0.67.
        assert 0.38 < rate < 0.55

    def test_hotspot_migration_moves_the_hot_region(self):
        system = SystemConfig(num_sites=2, num_items=100, seed=2)
        workload = make_workload(
            num_transactions=300,
            drift=DriftConfig(
                mode="piecewise",
                segments=(
                    DriftSegment(
                        at=0.0,
                        hotspot_probability=0.95,
                        hotspot_fraction=0.1,
                        hotspot_center=0.1,
                    ),
                    DriftSegment(at=0.5, hotspot_center=0.9),
                ),
            ),
        )
        specs = TransactionGenerator(system, workload).generate()
        half = len(specs) // 2

        def mean_item(group):
            items = [item for spec in group for item in spec.accessed_items()]
            return sum(items) / len(items)

        assert mean_item(specs[:half]) < 35
        assert mean_item(specs[half:]) > 65
