"""Transaction stream generation."""

import random

import pytest

from repro.common.config import ProtocolMix, SystemConfig, WorkloadConfig
from repro.common.errors import ConfigurationError
from repro.common.protocol_names import Protocol
from repro.workload.generator import (
    BurstyArrivalProcess,
    PoissonArrivalProcess,
    TransactionGenerator,
    build_arrival_process,
    generate_workload,
)


def configs(**overrides):
    system = SystemConfig(num_sites=4, num_items=50)
    defaults = dict(arrival_rate=20.0, num_transactions=200, min_size=2, max_size=6, seed=3)
    defaults.update(overrides)
    return system, WorkloadConfig(**defaults)


class TestDeterminism:
    def test_same_seed_gives_identical_workloads(self):
        system, workload = configs()
        first = generate_workload(system, workload)
        second = generate_workload(system, workload)
        assert [spec.tid for spec in first] == [spec.tid for spec in second]
        assert [spec.arrival_time for spec in first] == [spec.arrival_time for spec in second]
        assert [spec.read_items for spec in first] == [spec.read_items for spec in second]

    def test_different_seeds_differ(self):
        system, workload = configs(seed=1)
        _, other = configs(seed=2)
        assert generate_workload(system, workload) != generate_workload(system, other)


class TestShape:
    def test_generates_requested_number_of_transactions(self):
        system, workload = configs(num_transactions=77)
        assert len(generate_workload(system, workload)) == 77

    def test_arrival_times_are_increasing(self):
        system, workload = configs()
        specs = generate_workload(system, workload)
        times = [spec.arrival_time for spec in specs]
        assert times == sorted(times)
        assert times[0] > 0.0

    def test_mean_interarrival_matches_rate(self):
        system, workload = configs(arrival_rate=50.0, num_transactions=2000)
        specs = generate_workload(system, workload)
        span = specs[-1].arrival_time - specs[0].arrival_time
        mean_gap = span / (len(specs) - 1)
        assert mean_gap == pytest.approx(1.0 / 50.0, rel=0.15)

    def test_sizes_within_configured_bounds(self):
        system, workload = configs(min_size=3, max_size=5)
        for spec in generate_workload(system, workload):
            assert 3 <= spec.size <= 5

    def test_transaction_ids_unique(self):
        system, workload = configs()
        specs = generate_workload(system, workload)
        tids = [spec.tid for spec in specs]
        assert len(set(tids)) == len(tids)

    def test_sites_within_range_and_spread(self):
        system, workload = configs(num_transactions=400)
        sites = {spec.origin_site for spec in generate_workload(system, workload)}
        assert sites == set(range(system.num_sites))

    def test_read_fraction_respected_on_average(self):
        system, workload = configs(read_fraction=0.8, num_transactions=500)
        specs = generate_workload(system, workload)
        reads = sum(spec.num_reads for spec in specs)
        writes = sum(spec.num_writes for spec in specs)
        assert reads / (reads + writes) == pytest.approx(0.8, abs=0.05)

    def test_write_only_workload(self):
        system, workload = configs(read_fraction=0.0)
        for spec in generate_workload(system, workload):
            assert spec.num_reads == 0
            assert spec.num_writes >= 1

    def test_items_within_database(self):
        system, workload = configs()
        for spec in generate_workload(system, workload):
            assert all(0 <= item < system.num_items for item in spec.accessed_items())


class TestProtocolAssignment:
    def test_pure_mix_assigns_single_protocol(self):
        system, workload = configs(protocol_mix=ProtocolMix.pure(Protocol.PRECEDENCE_AGREEMENT))
        for spec in generate_workload(system, workload):
            assert spec.protocol is Protocol.PRECEDENCE_AGREEMENT

    def test_uniform_mix_assigns_all_protocols(self):
        system, workload = configs(num_transactions=300, protocol_mix=ProtocolMix.uniform())
        protocols = {spec.protocol for spec in generate_workload(system, workload)}
        assert protocols == set(Protocol)

    def test_unassigned_mode_leaves_protocol_none(self):
        system, workload = configs()
        specs = generate_workload(system, workload, assign_protocols=False)
        assert all(spec.protocol is None for spec in specs)

    def test_hotspot_configuration_concentrates_accesses(self):
        system, workload = configs(
            num_transactions=400, hotspot_probability=0.9, hotspot_fraction=0.1
        )
        specs = generate_workload(system, workload)
        hot_limit = int(system.num_items * 0.1)
        hot_accesses = sum(
            1 for spec in specs for item in spec.accessed_items() if item < hot_limit
        )
        total = sum(spec.size for spec in specs)
        assert hot_accesses / total > 0.5

    def test_compute_times_non_negative(self):
        system, workload = configs(compute_time=0.01)
        assert all(spec.compute_time >= 0 for spec in generate_workload(system, workload))

    def test_zero_compute_time_supported(self):
        system, workload = configs(compute_time=0.0)
        assert all(spec.compute_time == 0.0 for spec in generate_workload(system, workload))


class TestArrivalProcesses:
    def test_factory_selects_the_configured_process(self):
        _, poisson = configs()
        _, bursty = configs(arrival_process="bursty")
        assert isinstance(build_arrival_process(poisson), PoissonArrivalProcess)
        assert isinstance(build_arrival_process(bursty), BurstyArrivalProcess)

    def test_bursty_long_run_rate_matches_configured_rate(self):
        process = BurstyArrivalProcess(
            20.0, multiplier=10.0, burst_fraction=0.1, burst_duration=0.5
        )
        rng = random.Random(17)
        total = sum(process.next_interarrival(rng) for _ in range(20000))
        assert 20000 / total == pytest.approx(20.0, rel=0.1)

    def test_bursty_is_deterministic_under_fixed_seed(self):
        def gaps():
            process = BurstyArrivalProcess(
                15.0, multiplier=8.0, burst_fraction=0.2, burst_duration=0.4
            )
            rng = random.Random(23)
            return [process.next_interarrival(rng) for _ in range(200)]

        assert gaps() == gaps()

    def test_bursty_has_heavier_gap_tail_than_poisson(self):
        # Same mean rate, but bursts concentrate arrivals: the calm phase's
        # gaps are longer than the Poisson mean, so gap variance grows.
        rng_a, rng_b = random.Random(5), random.Random(5)
        poisson = PoissonArrivalProcess(20.0)
        bursty = BurstyArrivalProcess(
            20.0, multiplier=10.0, burst_fraction=0.1, burst_duration=0.5
        )
        p_gaps = [poisson.next_interarrival(rng_a) for _ in range(8000)]
        b_gaps = [bursty.next_interarrival(rng_b) for _ in range(8000)]

        def variance(values):
            mean = sum(values) / len(values)
            return sum((value - mean) ** 2 for value in values) / len(values)

        assert variance(b_gaps) > 1.5 * variance(p_gaps)

    def test_bursty_workload_generates_end_to_end(self):
        system, workload = configs(
            arrival_process="bursty", burst_multiplier=10.0, num_transactions=100
        )
        specs = generate_workload(system, workload)
        times = [spec.arrival_time for spec in specs]
        assert len(specs) == 100
        assert times == sorted(times)

    def test_invalid_burst_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(arrival_process="bursty", burst_multiplier=0.5)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(arrival_process="bursty", burst_fraction=0.0)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(arrival_process="marching-band")


class TestSizeDistributions:
    def test_bimodal_sizes_are_exactly_short_or_long(self):
        system, workload = configs(
            size_distribution="bimodal",
            min_size=2,
            max_size=9,
            bimodal_long_fraction=0.3,
            num_transactions=300,
        )
        sizes = {spec.size for spec in generate_workload(system, workload)}
        assert sizes <= {2, 9}
        assert sizes == {2, 9}

    def test_bimodal_long_fraction_respected_on_average(self):
        system, workload = configs(
            size_distribution="bimodal",
            min_size=1,
            max_size=8,
            bimodal_long_fraction=0.25,
            num_transactions=1000,
        )
        specs = generate_workload(system, workload)
        long_share = sum(1 for spec in specs if spec.size == 8) / len(specs)
        assert long_share == pytest.approx(0.25, abs=0.05)

    def test_bimodal_deterministic_under_fixed_seed(self):
        system, workload = configs(
            size_distribution="bimodal", min_size=1, max_size=6, seed=7
        )
        first = [spec.size for spec in generate_workload(system, workload)]
        second = [spec.size for spec in generate_workload(system, workload)]
        assert first == second

    def test_invalid_size_distribution_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(size_distribution="trimodal")
