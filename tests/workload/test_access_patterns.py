"""Workload access patterns."""

import random

import pytest

from repro.common.errors import ConfigurationError
from repro.workload.access_patterns import HotspotAccessPattern, UniformAccessPattern


class TestUniformAccessPattern:
    def test_draw_returns_distinct_sorted_items(self):
        pattern = UniformAccessPattern(100)
        rng = random.Random(1)
        items = pattern.draw(rng, 10)
        assert len(items) == 10
        assert len(set(items)) == 10
        assert items == sorted(items)

    def test_draw_clamped_to_database_size(self):
        pattern = UniformAccessPattern(5)
        items = pattern.draw(random.Random(1), 50)
        assert len(items) == 5

    def test_draw_at_least_one_item(self):
        pattern = UniformAccessPattern(5)
        assert len(pattern.draw(random.Random(1), 0)) == 1

    def test_items_within_range(self):
        pattern = UniformAccessPattern(20)
        for _ in range(20):
            assert all(0 <= item < 20 for item in pattern.draw(random.Random(), 5))

    def test_requires_positive_size(self):
        with pytest.raises(ConfigurationError):
            UniformAccessPattern(0)


class TestHotspotAccessPattern:
    def test_hot_region_receives_disproportionate_accesses(self):
        pattern = HotspotAccessPattern(100, hot_fraction=0.1, hot_probability=0.8)
        rng = random.Random(7)
        hot_hits = 0
        total = 0
        for _ in range(500):
            for item in pattern.draw(rng, 2):
                total += 1
                if item < pattern.hot_size:
                    hot_hits += 1
        assert hot_hits / total > 0.5        # far above the uniform 10%

    def test_zero_probability_behaves_like_uniform_range(self):
        pattern = HotspotAccessPattern(50, hot_fraction=0.1, hot_probability=0.0)
        items = pattern.draw(random.Random(3), 10)
        assert all(0 <= item < 50 for item in items)

    def test_hot_size_at_least_one(self):
        pattern = HotspotAccessPattern(5, hot_fraction=0.01, hot_probability=0.5)
        assert pattern.hot_size == 1

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            HotspotAccessPattern(10, hot_fraction=0.0, hot_probability=0.5)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            HotspotAccessPattern(10, hot_fraction=0.5, hot_probability=2.0)

    def test_distinct_items_even_under_heavy_skew(self):
        pattern = HotspotAccessPattern(20, hot_fraction=0.5, hot_probability=1.0)
        items = pattern.draw(random.Random(5), 8)
        assert len(set(items)) == 8
