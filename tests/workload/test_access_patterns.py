"""Workload access patterns."""

import random

import pytest

from repro.common.config import SystemConfig, WorkloadConfig
from repro.common.errors import ConfigurationError
from repro.workload.access_patterns import (
    HotspotAccessPattern,
    SiteSkewedAccessPattern,
    UniformAccessPattern,
    ZipfianAccessPattern,
    build_access_pattern,
)


class TestUniformAccessPattern:
    def test_draw_returns_distinct_sorted_items(self):
        pattern = UniformAccessPattern(100)
        rng = random.Random(1)
        items = pattern.draw(rng, 10)
        assert len(items) == 10
        assert len(set(items)) == 10
        assert items == sorted(items)

    def test_draw_clamped_to_database_size(self):
        pattern = UniformAccessPattern(5)
        items = pattern.draw(random.Random(1), 50)
        assert len(items) == 5

    def test_draw_at_least_one_item(self):
        pattern = UniformAccessPattern(5)
        assert len(pattern.draw(random.Random(1), 0)) == 1

    def test_items_within_range(self):
        pattern = UniformAccessPattern(20)
        for _ in range(20):
            assert all(0 <= item < 20 for item in pattern.draw(random.Random(), 5))

    def test_requires_positive_size(self):
        with pytest.raises(ConfigurationError):
            UniformAccessPattern(0)


class TestHotspotAccessPattern:
    def test_hot_region_receives_disproportionate_accesses(self):
        pattern = HotspotAccessPattern(100, hot_fraction=0.1, hot_probability=0.8)
        rng = random.Random(7)
        hot_hits = 0
        total = 0
        for _ in range(500):
            for item in pattern.draw(rng, 2):
                total += 1
                if item < pattern.hot_size:
                    hot_hits += 1
        assert hot_hits / total > 0.5        # far above the uniform 10%

    def test_zero_probability_behaves_like_uniform_range(self):
        pattern = HotspotAccessPattern(50, hot_fraction=0.1, hot_probability=0.0)
        items = pattern.draw(random.Random(3), 10)
        assert all(0 <= item < 50 for item in items)

    def test_hot_size_at_least_one(self):
        pattern = HotspotAccessPattern(5, hot_fraction=0.01, hot_probability=0.5)
        assert pattern.hot_size == 1

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            HotspotAccessPattern(10, hot_fraction=0.0, hot_probability=0.5)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            HotspotAccessPattern(10, hot_fraction=0.5, hot_probability=2.0)

    def test_distinct_items_even_under_heavy_skew(self):
        pattern = HotspotAccessPattern(20, hot_fraction=0.5, hot_probability=1.0)
        items = pattern.draw(random.Random(5), 8)
        assert len(set(items)) == 8

    def test_draw_larger_than_hot_region_terminates_at_full_probability(self):
        # With hot_probability=1.0 only the hot region is reachable by
        # rejection sampling; a draw wider than the region must still return.
        pattern = HotspotAccessPattern(40, hot_fraction=0.1, hot_probability=1.0)
        items = pattern.draw(random.Random(2), 12)
        assert len(set(items)) == 12
        assert set(range(pattern.hot_size)) <= set(items)


class TestZipfianAccessPattern:
    def test_low_ids_dominate(self):
        pattern = ZipfianAccessPattern(100, theta=1.0)
        rng = random.Random(11)
        head_hits = 0
        total = 0
        for _ in range(600):
            for item in pattern.draw(rng, 2):
                total += 1
                if item < 10:
                    head_hits += 1
        # Under uniform access the first 10 of 100 items would absorb ~10%.
        assert head_hits / total > 0.4

    def test_higher_theta_is_more_skewed(self):
        mild = ZipfianAccessPattern(100, theta=0.5)
        steep = ZipfianAccessPattern(100, theta=1.5)
        assert steep.probability(0) > mild.probability(0)
        assert steep.probability(99) < mild.probability(99)

    def test_probabilities_sum_to_one(self):
        pattern = ZipfianAccessPattern(64, theta=0.8)
        assert sum(pattern.probability(item) for item in range(64)) == pytest.approx(1.0)

    def test_deterministic_under_fixed_seed(self):
        pattern = ZipfianAccessPattern(80, theta=0.9)
        first = [pattern.draw(random.Random(42), 5) for _ in range(10)]
        second = [pattern.draw(random.Random(42), 5) for _ in range(10)]
        assert first == second

    def test_draws_are_distinct_sorted_and_in_range(self):
        pattern = ZipfianAccessPattern(30, theta=1.2)
        rng = random.Random(3)
        for _ in range(50):
            items = pattern.draw(rng, 6)
            assert items == sorted(set(items))
            assert all(0 <= item < 30 for item in items)

    def test_full_database_draw_terminates_under_extreme_skew(self):
        pattern = ZipfianAccessPattern(16, theta=4.0)
        items = pattern.draw(random.Random(1), 16)
        assert items == list(range(16))

    def test_invalid_theta_rejected(self):
        with pytest.raises(ConfigurationError):
            ZipfianAccessPattern(10, theta=0.0)


class TestSiteSkewedAccessPattern:
    def test_partitions_cover_item_space(self):
        pattern = SiteSkewedAccessPattern(50, num_sites=4, locality=0.8)
        bounds = [pattern.partition(site) for site in range(4)]
        assert bounds[0][0] == 0
        assert bounds[-1][1] == 50
        for (_, end), (start, _) in zip(bounds, bounds[1:]):
            assert end == start

    def test_local_partition_receives_most_accesses(self):
        pattern = SiteSkewedAccessPattern(100, num_sites=4, locality=0.9)
        rng = random.Random(7)
        start, end = pattern.partition(2)
        local = 0
        total = 0
        for _ in range(500):
            for item in pattern.draw(rng, 2, site=2):
                total += 1
                if start <= item < end:
                    local += 1
        # A site's partition holds 25% of the items; locality should push far above.
        assert local / total > 0.7

    def test_zero_locality_behaves_uniformly(self):
        pattern = SiteSkewedAccessPattern(40, num_sites=4, locality=0.0)
        items = pattern.draw(random.Random(5), 10, site=1)
        assert all(0 <= item < 40 for item in items)
        assert len(set(items)) == 10

    def test_site_none_falls_back_to_uniform(self):
        pattern = SiteSkewedAccessPattern(40, num_sites=4, locality=1.0)
        items = pattern.draw(random.Random(5), 10)
        assert len(set(items)) == 10

    def test_draw_larger_than_partition_terminates_at_full_locality(self):
        # With locality=1.0 only the 10-item partition is reachable by
        # rejection sampling; a wider draw must still return.
        pattern = SiteSkewedAccessPattern(40, num_sites=4, locality=1.0)
        start, end = pattern.partition(1)
        items = pattern.draw(random.Random(3), 15, site=1)
        assert len(set(items)) == 15
        assert set(range(start, end)) <= set(items)

    def test_deterministic_under_fixed_seed(self):
        pattern = SiteSkewedAccessPattern(64, num_sites=4, locality=0.85)
        first = [pattern.draw(random.Random(9), 4, site=s % 4) for s in range(12)]
        second = [pattern.draw(random.Random(9), 4, site=s % 4) for s in range(12)]
        assert first == second

    def test_invalid_locality_rejected(self):
        with pytest.raises(ConfigurationError):
            SiteSkewedAccessPattern(10, num_sites=2, locality=1.5)

    def test_invalid_site_count_rejected(self):
        with pytest.raises(ConfigurationError):
            SiteSkewedAccessPattern(10, num_sites=0, locality=0.5)


class TestBuildAccessPattern:
    def test_default_is_uniform(self):
        pattern = build_access_pattern(SystemConfig(), WorkloadConfig())
        assert isinstance(pattern, UniformAccessPattern)

    def test_legacy_hotspot_shortcut_preserved(self):
        pattern = build_access_pattern(
            SystemConfig(), WorkloadConfig(hotspot_probability=0.5)
        )
        assert isinstance(pattern, HotspotAccessPattern)

    def test_explicit_names_select_the_right_pattern(self):
        system = SystemConfig()
        cases = {
            "hotspot": HotspotAccessPattern,
            "zipfian": ZipfianAccessPattern,
            "site-skewed": SiteSkewedAccessPattern,
        }
        for name, expected in cases.items():
            workload = WorkloadConfig(
                access_pattern=name,
                hotspot_probability=0.5 if name == "hotspot" else 0.0,
            )
            assert isinstance(build_access_pattern(system, workload), expected)

    def test_unknown_name_rejected_by_config(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(access_pattern="nope")

    def test_hotspot_pattern_without_probability_rejected_by_config(self):
        # Explicitly asking for hot-spot skew with a zero hot probability
        # would silently measure a uniform workload.
        with pytest.raises(ConfigurationError):
            WorkloadConfig(access_pattern="hotspot")
