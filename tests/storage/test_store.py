"""Versioned value store."""

from repro.common.ids import CopyId, TransactionId
from repro.storage.store import ValueStore


COPY = CopyId(0, 0)
T1 = TransactionId(0, 1)
T2 = TransactionId(1, 1)


class TestValueStore:
    def test_default_value_before_any_write(self):
        store = ValueStore(default_value=100)
        assert store.read(COPY) == 100
        assert store.last_writer(COPY) is None

    def test_write_then_read(self):
        store = ValueStore()
        store.write(COPY, 42, T1, time=1.0)
        assert store.read(COPY) == 42
        assert store.last_writer(COPY) == T1

    def test_latest_write_wins(self):
        store = ValueStore()
        store.write(COPY, 1, T1, time=1.0)
        store.write(COPY, 2, T2, time=2.0)
        assert store.read(COPY) == 2
        assert store.last_writer(COPY) == T2

    def test_initialize_sets_value_without_writer(self):
        store = ValueStore()
        store.initialize(COPY, 7)
        assert store.read(COPY) == 7
        assert store.last_writer(COPY) is None

    def test_history_is_bounded(self):
        store = ValueStore(history_limit=3)
        for value in range(10):
            store.write(COPY, value, T1, time=float(value))
        history = store.history(COPY)
        assert len(history) == 3
        assert [version.value for version in history] == [7, 8, 9]

    def test_history_preserves_write_times(self):
        store = ValueStore()
        store.write(COPY, 5, T1, time=2.5)
        assert store.history(COPY)[0].write_time == 2.5

    def test_snapshot_contains_only_touched_copies(self):
        store = ValueStore()
        other = CopyId(3, 1)
        store.write(COPY, 1, T1, time=1.0)
        store.write(other, 2, T2, time=1.0)
        assert store.snapshot() == {COPY: 1, other: 2}

    def test_independent_copies(self):
        store = ValueStore()
        other = CopyId(0, 1)
        store.write(COPY, "a", T1, time=1.0)
        assert store.read(other) == 0
