"""Per-copy execution logs."""

from repro.common.ids import CopyId, TransactionId
from repro.common.operations import OperationType
from repro.common.protocol_names import Protocol
from repro.storage.log import CopyLog, ExecutionLog


COPY = CopyId(0, 0)
T1 = TransactionId(0, 1)
T2 = TransactionId(0, 2)


class TestCopyLog:
    def test_append_preserves_order(self):
        log = CopyLog(COPY)
        log.append(T1, OperationType.READ, Protocol.TWO_PHASE_LOCKING, 1.0)
        log.append(T2, OperationType.WRITE, Protocol.TIMESTAMP_ORDERING, 2.0)
        entries = log.entries()
        assert [entry.transaction for entry in entries] == [T1, T2]
        assert len(log) == 2

    def test_conflict_edges_require_a_write_and_distinct_transactions(self):
        log = CopyLog(COPY)
        log.append(T1, OperationType.READ, Protocol.TWO_PHASE_LOCKING, 1.0)
        log.append(T2, OperationType.READ, Protocol.TWO_PHASE_LOCKING, 2.0)
        log.append(T2, OperationType.WRITE, Protocol.TWO_PHASE_LOCKING, 3.0)
        log.append(T1, OperationType.WRITE, Protocol.TWO_PHASE_LOCKING, 4.0)
        pairs = list(log.conflict_edges())
        assert (T1, T2) in pairs         # T1 read before T2 write
        assert (T2, T1) in pairs         # T2 write before T1 write
        assert (T2, T2) not in pairs     # same transaction never conflicts with itself

    def test_conflict_edges_read_read_never_conflicts(self):
        log = CopyLog(COPY)
        log.append(T1, OperationType.READ, Protocol.TWO_PHASE_LOCKING, 1.0)
        log.append(T2, OperationType.READ, Protocol.TWO_PHASE_LOCKING, 2.0)
        assert list(log.conflict_edges()) == []

    def test_conflict_edges_span_non_adjacent_writers(self):
        t3 = TransactionId(0, 3)
        log = CopyLog(COPY)
        log.append(T1, OperationType.WRITE, Protocol.TWO_PHASE_LOCKING, 1.0)
        log.append(T2, OperationType.WRITE, Protocol.TWO_PHASE_LOCKING, 2.0)
        log.append(t3, OperationType.WRITE, Protocol.TWO_PHASE_LOCKING, 3.0)
        # The sweep must still report T1 -> T3 even though T2 wrote in between.
        assert set(log.conflict_edges()) == {(T1, T2), (T1, t3), (T2, t3)}

    def test_remove_transaction(self):
        log = CopyLog(COPY)
        log.append(T1, OperationType.READ, Protocol.TIMESTAMP_ORDERING, 1.0)
        log.append(T2, OperationType.WRITE, Protocol.TIMESTAMP_ORDERING, 2.0)
        removed = log.remove_transaction(T1)
        assert removed == 1
        assert [entry.transaction for entry in log.entries()] == [T2]

    def test_remove_absent_transaction_is_noop(self):
        log = CopyLog(COPY)
        assert log.remove_transaction(T1) == 0


class TestExecutionLog:
    def test_record_creates_logs_on_demand(self):
        log = ExecutionLog()
        log.record(COPY, T1, OperationType.WRITE, Protocol.PRECEDENCE_AGREEMENT, 1.0)
        assert log.copies() == (COPY,)
        assert log.total_operations() == 1

    def test_transactions_lists_distinct_sorted(self):
        log = ExecutionLog()
        other = CopyId(1, 1)
        log.record(COPY, T2, OperationType.WRITE, Protocol.TWO_PHASE_LOCKING, 1.0)
        log.record(other, T1, OperationType.READ, Protocol.TWO_PHASE_LOCKING, 2.0)
        log.record(other, T1, OperationType.WRITE, Protocol.TWO_PHASE_LOCKING, 3.0)
        assert log.transactions() == (T1, T2)

    def test_all_entries_spans_all_copies(self):
        log = ExecutionLog()
        log.record(COPY, T1, OperationType.READ, Protocol.TWO_PHASE_LOCKING, 1.0)
        log.record(CopyId(1, 0), T2, OperationType.WRITE, Protocol.TWO_PHASE_LOCKING, 2.0)
        assert len(log.all_entries()) == 2

    def test_remove_transaction_scoped_to_copy(self):
        log = ExecutionLog()
        other = CopyId(1, 0)
        log.record(COPY, T1, OperationType.READ, Protocol.TIMESTAMP_ORDERING, 1.0)
        log.record(other, T1, OperationType.READ, Protocol.TIMESTAMP_ORDERING, 1.0)
        assert log.remove_transaction(COPY, T1) == 1
        assert log.total_operations() == 1

    def test_remove_from_unknown_copy_is_noop(self):
        log = ExecutionLog()
        assert log.remove_transaction(COPY, T1) == 0

    def test_entry_conflict_helper(self):
        log = ExecutionLog()
        first = log.record(COPY, T1, OperationType.WRITE, Protocol.TWO_PHASE_LOCKING, 1.0)
        second = log.record(COPY, T2, OperationType.READ, Protocol.TWO_PHASE_LOCKING, 2.0)
        third = log.record(CopyId(9, 0), T2, OperationType.WRITE, Protocol.TWO_PHASE_LOCKING, 3.0)
        assert first.conflicts_with(second)
        assert not first.conflicts_with(third)
