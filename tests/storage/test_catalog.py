"""Replica catalog: placement and logical-to-physical translation."""

import pytest

from repro.common.config import SystemConfig
from repro.common.errors import ConfigurationError
from repro.common.ids import CopyId
from repro.common.operations import OperationType, read, write
from repro.storage.catalog import ReplicaCatalog


class TestPlacement:
    def test_single_copy_placement_round_robin(self):
        catalog = ReplicaCatalog(num_sites=3, num_items=6, replication_factor=1)
        assert catalog.sites_holding(0) == (0,)
        assert catalog.sites_holding(1) == (1,)
        assert catalog.sites_holding(3) == (0,)

    def test_replicated_placement_uses_consecutive_sites(self):
        catalog = ReplicaCatalog(num_sites=4, num_items=4, replication_factor=2)
        assert catalog.sites_holding(3) == (3, 0)

    def test_every_item_has_replication_factor_copies(self):
        catalog = ReplicaCatalog(num_sites=5, num_items=20, replication_factor=3)
        for item in range(20):
            assert len(catalog.copies_of(item)) == 3

    def test_copies_at_site_partition_matches_copies_of(self):
        catalog = ReplicaCatalog(num_sites=3, num_items=9, replication_factor=2)
        from_sites = {copy for site in range(3) for copy in catalog.copies_at(site)}
        from_items = {copy for item in range(9) for copy in catalog.copies_of(item)}
        assert from_sites == from_items

    def test_invalid_replication_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            ReplicaCatalog(num_sites=2, num_items=4, replication_factor=3)

    def test_unknown_item_rejected(self):
        catalog = ReplicaCatalog(num_sites=2, num_items=4)
        with pytest.raises(ConfigurationError):
            catalog.sites_holding(10)

    def test_unknown_site_rejected(self):
        catalog = ReplicaCatalog(num_sites=2, num_items=4)
        with pytest.raises(ConfigurationError):
            catalog.copies_at(5)

    def test_from_config(self):
        config = SystemConfig(num_sites=4, num_items=8, replication_factor=2)
        catalog = ReplicaCatalog.from_config(config)
        assert catalog.num_sites == 4
        assert catalog.replication_factor == 2


class TestReadOneWriteAll:
    def test_read_prefers_local_copy(self):
        catalog = ReplicaCatalog(num_sites=3, num_items=3, replication_factor=3)
        assert catalog.read_copy(0, reader_site=2) == CopyId(0, 2)

    def test_read_falls_back_to_first_holder(self):
        catalog = ReplicaCatalog(num_sites=4, num_items=4, replication_factor=1)
        # Item 1 lives only at site 1; a reader at site 3 goes there.
        assert catalog.read_copy(1, reader_site=3) == CopyId(1, 1)

    def test_write_targets_every_copy(self):
        catalog = ReplicaCatalog(num_sites=4, num_items=4, replication_factor=3)
        assert set(catalog.write_copies(2)) == set(catalog.copies_of(2))


class TestTranslation:
    def test_reads_become_single_physical_read(self):
        catalog = ReplicaCatalog(num_sites=3, num_items=3, replication_factor=2)
        physical = catalog.translate([read(0)], origin_site=0)
        assert len(physical) == 1
        assert physical[0].op_type is OperationType.READ

    def test_writes_become_one_per_copy(self):
        catalog = ReplicaCatalog(num_sites=3, num_items=3, replication_factor=2)
        physical = catalog.translate([write(0)], origin_site=0)
        assert len(physical) == 2
        assert all(op.op_type is OperationType.WRITE for op in physical)

    def test_translation_preserves_read_then_write_order(self):
        catalog = ReplicaCatalog(num_sites=2, num_items=4, replication_factor=1)
        physical = catalog.translate([read(0), write(1)], origin_site=0)
        assert physical[0].op_type is OperationType.READ
        assert physical[-1].op_type is OperationType.WRITE
