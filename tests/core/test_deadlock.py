"""Wait-for graph and deadlock victim selection."""

from repro.common.ids import TransactionId
from repro.common.protocol_names import Protocol
from repro.core.deadlock import DeadlockDetector, WaitForGraph


T1, T2, T3, T4 = (TransactionId(0, i) for i in range(1, 5))


class TestWaitForGraph:
    def test_acyclic_graph_has_no_cycle(self):
        graph = WaitForGraph()
        graph.add_edges([(T1, T2), (T2, T3)])
        assert graph.find_cycle() is None

    def test_self_edges_are_ignored(self):
        graph = WaitForGraph()
        graph.add_edge(T1, T1)
        assert graph.find_cycle() is None
        assert graph.edge_count() == 0

    def test_two_cycle_detected(self):
        graph = WaitForGraph()
        graph.add_edges([(T1, T2), (T2, T1)])
        cycle = graph.find_cycle()
        assert cycle is not None
        assert set(cycle) == {T1, T2}

    def test_long_cycle_detected(self):
        graph = WaitForGraph()
        graph.add_edges([(T1, T2), (T2, T3), (T3, T4), (T4, T1)])
        cycle = graph.find_cycle()
        assert set(cycle) == {T1, T2, T3, T4}

    def test_cycle_in_disconnected_component(self):
        graph = WaitForGraph()
        graph.add_edges([(T1, T2), (T3, T4), (T4, T3)])
        cycle = graph.find_cycle()
        assert set(cycle) == {T3, T4}

    def test_remove_node_breaks_cycle(self):
        graph = WaitForGraph()
        graph.add_edges([(T1, T2), (T2, T1)])
        graph.remove_node(T1)
        assert graph.find_cycle() is None

    def test_successors_sorted(self):
        graph = WaitForGraph()
        graph.add_edges([(T1, T3), (T1, T2)])
        assert graph.successors(T1) == (T2, T3)

    def test_nodes_include_targets(self):
        graph = WaitForGraph()
        graph.add_edge(T1, T2)
        assert set(graph.nodes()) == {T1, T2}


class TestDeadlockDetector:
    def test_no_deadlock_resolution_is_empty(self):
        detector = DeadlockDetector()
        resolution = detector.resolve([(T1, T2)], {})
        assert not resolution.deadlock_found
        assert resolution.victims == []

    def test_victim_chosen_from_cycle(self):
        detector = DeadlockDetector()
        resolution = detector.resolve([(T1, T2), (T2, T1)], {})
        assert resolution.deadlock_found
        assert len(resolution.victims) == 1
        assert resolution.victims[0] in {T1, T2}

    def test_victim_prefers_2pl_members(self):
        detector = DeadlockDetector()
        protocols = {T1: Protocol.PRECEDENCE_AGREEMENT, T2: Protocol.TWO_PHASE_LOCKING}
        resolution = detector.resolve([(T1, T2), (T2, T1)], protocols)
        assert resolution.victims == [T2]

    def test_victim_prefers_fewest_locks(self):
        detector = DeadlockDetector(lock_count_of=lambda tid: {T1: 5, T2: 1}[tid])
        protocols = {T1: Protocol.TWO_PHASE_LOCKING, T2: Protocol.TWO_PHASE_LOCKING}
        resolution = detector.resolve([(T1, T2), (T2, T1)], protocols)
        assert resolution.victims == [T2]

    def test_tie_break_prefers_youngest(self):
        detector = DeadlockDetector()
        protocols = {T1: Protocol.TWO_PHASE_LOCKING, T2: Protocol.TWO_PHASE_LOCKING}
        resolution = detector.resolve([(T1, T2), (T2, T1)], protocols)
        assert resolution.victims == [T2]   # larger seq = younger

    def test_multiple_cycles_all_resolved_in_one_scan(self):
        detector = DeadlockDetector()
        edges = [(T1, T2), (T2, T1), (T3, T4), (T4, T3)]
        resolution = detector.resolve(edges, {})
        assert len(resolution.cycles) == 2
        assert len(resolution.victims) == 2

    def test_overlapping_cycles_may_share_a_victim(self):
        detector = DeadlockDetector()
        protocols = {tid: Protocol.TWO_PHASE_LOCKING for tid in (T1, T2, T3)}
        edges = [(T1, T2), (T2, T1), (T2, T3), (T3, T2)]
        resolution = detector.resolve(edges, protocols)
        # Removing victims must leave the remaining graph acyclic.
        remaining = WaitForGraph()
        remaining.add_edges(edges)
        for victim in resolution.victims:
            remaining.remove_node(victim)
        assert remaining.find_cycle() is None

    def test_unknown_protocol_defaults_to_2pl_candidate(self):
        detector = DeadlockDetector()
        resolution = detector.resolve([(T1, T2), (T2, T1)], {T1: Protocol.TIMESTAMP_ORDERING})
        # T2 has no protocol registered; it is treated as 2PL and chosen.
        assert resolution.victims == [T2]


class TestPhantomCycles:
    """Cycles without a 2PL member are phantoms (Corollary 2) and abort nobody."""

    def test_pure_to_cycle_aborts_nobody(self):
        detector = DeadlockDetector()
        protocols = {T1: Protocol.TIMESTAMP_ORDERING, T2: Protocol.TIMESTAMP_ORDERING}
        resolution = detector.resolve([(T1, T2), (T2, T1)], protocols)
        assert resolution.victims == []
        assert not resolution.deadlock_found
        assert resolution.phantom_cycles == [(T1, T2)] or resolution.phantom_cycles == [(T2, T1)]

    def test_pure_pa_cycle_aborts_nobody(self):
        detector = DeadlockDetector()
        protocols = {T1: Protocol.PRECEDENCE_AGREEMENT, T2: Protocol.PRECEDENCE_AGREEMENT}
        resolution = detector.resolve([(T1, T2), (T2, T1)], protocols)
        assert resolution.victims == []
        assert len(resolution.phantom_cycles) == 1

    def test_true_cycle_next_to_a_phantom_is_still_resolved(self):
        detector = DeadlockDetector()
        protocols = {
            T1: Protocol.TIMESTAMP_ORDERING,
            T2: Protocol.TIMESTAMP_ORDERING,
            T3: Protocol.TWO_PHASE_LOCKING,
            T4: Protocol.TWO_PHASE_LOCKING,
        }
        edges = [(T1, T2), (T2, T1), (T3, T4), (T4, T3)]
        resolution = detector.resolve(edges, protocols)
        assert len(resolution.phantom_cycles) == 1
        assert len(resolution.cycles) == 1
        assert resolution.victims and resolution.victims[0] in {T3, T4}

    def test_mixed_cycle_is_not_a_phantom(self):
        detector = DeadlockDetector()
        protocols = {T1: Protocol.TIMESTAMP_ORDERING, T2: Protocol.TWO_PHASE_LOCKING}
        resolution = detector.resolve([(T1, T2), (T2, T1)], protocols)
        assert resolution.victims == [T2]
        assert resolution.phantom_cycles == []
