"""Per-protocol precedence-assignment policies."""

import pytest

from repro.common.errors import ProtocolError, UnknownProtocolError
from repro.common.operations import OperationType
from repro.common.protocol_names import Protocol
from repro.core.locks import LockMode
from repro.core.protocols import (
    DecisionKind,
    PrecedenceAgreementPolicy,
    TimestampOrderingPolicy,
    TwoPhaseLockingPolicy,
    default_policies,
    get_policy,
    register_policy,
)
from repro.core.protocols.base import QueueStateView

from tests.conftest import make_request


def view(read_ts=0.0, write_ts=0.0, max_seen=0.0, arrival_seq=0):
    return QueueStateView(
        read_ts=read_ts,
        write_ts=write_ts,
        max_timestamp_seen=max_seen,
        arrival_seq=arrival_seq,
    )


class TestTwoPhaseLockingPolicy:
    def test_always_accepts(self):
        policy = TwoPhaseLockingPolicy()
        request = make_request(protocol=Protocol.TWO_PHASE_LOCKING, timestamp=42.0)
        decision = policy.decide_arrival(request, view(write_ts=100.0, read_ts=100.0))
        assert decision.kind is DecisionKind.ACCEPT

    def test_precedence_uses_max_seen_timestamp_not_own(self):
        policy = TwoPhaseLockingPolicy()
        request = make_request(protocol=Protocol.TWO_PHASE_LOCKING, timestamp=42.0)
        decision = policy.decide_arrival(request, view(max_seen=7.0, arrival_seq=3))
        assert decision.precedence.timestamp == 7.0
        assert decision.precedence.arrival_seq == 3
        assert decision.precedence.is_two_phase_locking

    def test_lock_modes(self):
        policy = TwoPhaseLockingPolicy()
        assert policy.lock_mode(OperationType.READ) is LockMode.READ
        assert policy.lock_mode(OperationType.WRITE) is LockMode.WRITE


class TestTimestampOrderingPolicy:
    def test_read_accepted_when_newer_than_write_ts(self):
        policy = TimestampOrderingPolicy()
        request = make_request(protocol=Protocol.TIMESTAMP_ORDERING, op="r", timestamp=5.0)
        decision = policy.decide_arrival(request, view(write_ts=4.0, read_ts=100.0))
        assert decision.kind is DecisionKind.ACCEPT
        assert decision.precedence.timestamp == 5.0

    def test_read_rejected_when_older_than_write_ts(self):
        policy = TimestampOrderingPolicy()
        request = make_request(protocol=Protocol.TIMESTAMP_ORDERING, op="r", timestamp=3.0)
        decision = policy.decide_arrival(request, view(write_ts=4.0))
        assert decision.kind is DecisionKind.REJECT

    def test_write_rejected_by_newer_read(self):
        policy = TimestampOrderingPolicy()
        request = make_request(protocol=Protocol.TIMESTAMP_ORDERING, op="w", timestamp=3.0)
        decision = policy.decide_arrival(request, view(write_ts=0.0, read_ts=4.0))
        assert decision.kind is DecisionKind.REJECT

    def test_write_rejected_by_newer_write(self):
        policy = TimestampOrderingPolicy()
        request = make_request(protocol=Protocol.TIMESTAMP_ORDERING, op="w", timestamp=3.0)
        decision = policy.decide_arrival(request, view(write_ts=5.0, read_ts=0.0))
        assert decision.kind is DecisionKind.REJECT

    def test_write_accepted_when_newer_than_both(self):
        policy = TimestampOrderingPolicy()
        request = make_request(protocol=Protocol.TIMESTAMP_ORDERING, op="w", timestamp=6.0)
        decision = policy.decide_arrival(request, view(write_ts=5.0, read_ts=4.0))
        assert decision.kind is DecisionKind.ACCEPT

    def test_equal_timestamp_counts_as_out_of_order(self):
        policy = TimestampOrderingPolicy()
        request = make_request(protocol=Protocol.TIMESTAMP_ORDERING, op="r", timestamp=4.0)
        decision = policy.decide_arrival(request, view(write_ts=4.0))
        assert decision.kind is DecisionKind.REJECT

    def test_to_readers_use_semi_read_locks_only_with_semi_locks_enabled(self):
        policy = TimestampOrderingPolicy()
        assert policy.lock_mode(OperationType.READ, semi_locks_enabled=True) is LockMode.SEMI_READ
        assert policy.lock_mode(OperationType.READ, semi_locks_enabled=False) is LockMode.READ


class TestPrecedenceAgreementPolicy:
    def test_acceptable_request_proposes_its_own_timestamp(self):
        policy = PrecedenceAgreementPolicy()
        request = make_request(protocol=Protocol.PRECEDENCE_AGREEMENT, op="r", timestamp=5.0)
        decision = policy.decide_arrival(request, view(write_ts=4.0))
        assert decision.kind is DecisionKind.BLOCK
        assert decision.backoff_timestamp == 5.0
        assert decision.precedence.timestamp == 5.0

    def test_out_of_order_request_proposes_backed_off_timestamp(self):
        policy = PrecedenceAgreementPolicy()
        request = make_request(
            protocol=Protocol.PRECEDENCE_AGREEMENT, op="r", timestamp=3.0, backoff_interval=1.0
        )
        decision = policy.decide_arrival(request, view(write_ts=4.5))
        assert decision.kind is DecisionKind.BLOCK
        assert decision.backoff_timestamp == pytest.approx(5.0)
        assert decision.precedence.timestamp == pytest.approx(5.0)

    def test_write_threshold_is_max_of_read_and_write_ts(self):
        policy = PrecedenceAgreementPolicy()
        request = make_request(
            protocol=Protocol.PRECEDENCE_AGREEMENT, op="w", timestamp=3.0, backoff_interval=2.0
        )
        decision = policy.decide_arrival(request, view(write_ts=4.0, read_ts=6.5))
        assert decision.backoff_timestamp == pytest.approx(7.0)

    def test_backoff_timestamp_is_smallest_multiple_above_threshold(self):
        compute = PrecedenceAgreementPolicy.backoff_timestamp
        assert compute(3.0, 1.0, 4.5) == pytest.approx(5.0)
        assert compute(3.0, 1.0, 3.0) == pytest.approx(4.0)
        assert compute(3.0, 2.0, 10.0) == pytest.approx(11.0)

    def test_backoff_below_threshold_returns_next_step(self):
        # Threshold below the timestamp still moves forward by one interval.
        assert PrecedenceAgreementPolicy.backoff_timestamp(5.0, 1.0, 2.0) == pytest.approx(6.0)

    def test_backoff_requires_positive_interval(self):
        with pytest.raises(ProtocolError):
            PrecedenceAgreementPolicy.backoff_timestamp(1.0, 0.0, 5.0)


class TestRegistry:
    def test_default_policies_cover_all_protocols(self):
        policies = default_policies()
        assert set(policies) == set(Protocol)

    def test_get_policy_returns_registered_instances(self):
        for protocol in Protocol:
            assert get_policy(protocol).protocol is protocol

    def test_register_duplicate_requires_replace(self):
        with pytest.raises(UnknownProtocolError):
            register_policy(TwoPhaseLockingPolicy())
        register_policy(TwoPhaseLockingPolicy(), replace=True)
