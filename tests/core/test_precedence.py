"""Unified precedence space ordering rules (Section 4.1)."""

from repro.common.ids import TransactionId
from repro.common.protocol_names import Protocol
from repro.core.precedence import Precedence


def prec(ts, protocol, site=0, seq=1, arrival=0):
    return Precedence(
        timestamp=ts,
        protocol=protocol,
        site=site,
        transaction=TransactionId(site, seq),
        arrival_seq=arrival,
    )


class TestRuleOneTimestamps:
    def test_smaller_timestamp_comes_first(self):
        assert prec(1.0, Protocol.TIMESTAMP_ORDERING) < prec(2.0, Protocol.TIMESTAMP_ORDERING)

    def test_timestamp_dominates_protocol(self):
        # A 2PL request with a smaller timestamp precedes a T/O request with a larger one.
        assert prec(1.0, Protocol.TWO_PHASE_LOCKING) < prec(2.0, Protocol.TIMESTAMP_ORDERING)

    def test_timestamp_dominates_site(self):
        assert prec(1.0, Protocol.PRECEDENCE_AGREEMENT, site=9) < prec(
            2.0, Protocol.PRECEDENCE_AGREEMENT, site=0
        )


class TestRuleTwoSiteIds:
    def test_tie_broken_by_site_id_for_non_2pl(self):
        assert prec(1.0, Protocol.TIMESTAMP_ORDERING, site=0) < prec(
            1.0, Protocol.TIMESTAMP_ORDERING, site=1
        )

    def test_2pl_counts_as_biggest_site_id(self):
        non_2pl = prec(1.0, Protocol.PRECEDENCE_AGREEMENT, site=99)
        two_pl = prec(1.0, Protocol.TWO_PHASE_LOCKING, site=0)
        assert non_2pl < two_pl

    def test_to_and_pa_with_same_site_fall_through_to_rule_three(self):
        a = prec(1.0, Protocol.TIMESTAMP_ORDERING, site=2, seq=1)
        b = prec(1.0, Protocol.PRECEDENCE_AGREEMENT, site=2, seq=2)
        assert a < b


class TestRuleThreeFinalTieBreaks:
    def test_both_2pl_ordered_by_arrival_sequence(self):
        first = prec(1.0, Protocol.TWO_PHASE_LOCKING, site=5, seq=9, arrival=0)
        second = prec(1.0, Protocol.TWO_PHASE_LOCKING, site=0, seq=1, arrival=1)
        assert first < second

    def test_both_non_2pl_ordered_by_transaction_id(self):
        a = prec(1.0, Protocol.TIMESTAMP_ORDERING, site=1, seq=3)
        b = prec(1.0, Protocol.TIMESTAMP_ORDERING, site=1, seq=7)
        assert a < b

    def test_total_order_is_consistent(self):
        a = prec(1.0, Protocol.TIMESTAMP_ORDERING, site=0)
        b = prec(1.0, Protocol.TWO_PHASE_LOCKING, site=0, arrival=3)
        assert (a < b) != (b < a)
        assert a <= b or b <= a


class TestHelpers:
    def test_with_timestamp_preserves_identity_fields(self):
        original = prec(1.0, Protocol.PRECEDENCE_AGREEMENT, site=2, seq=4)
        moved = original.with_timestamp(9.0)
        assert moved.timestamp == 9.0
        assert moved.transaction == original.transaction
        assert moved.protocol is original.protocol
        assert original.timestamp == 1.0

    def test_comparison_operators_agree_with_sort_key(self):
        a = prec(1.0, Protocol.TIMESTAMP_ORDERING)
        b = prec(2.0, Protocol.TIMESTAMP_ORDERING)
        assert a < b and a <= b and b > a and b >= a

    def test_sorting_a_list(self):
        items = [
            prec(3.0, Protocol.TWO_PHASE_LOCKING, arrival=5),
            prec(1.0, Protocol.TIMESTAMP_ORDERING, site=1),
            prec(1.0, Protocol.TIMESTAMP_ORDERING, site=0),
            prec(2.0, Protocol.PRECEDENCE_AGREEMENT),
        ]
        ordered = sorted(items, key=lambda p: p.sort_key())
        assert [p.timestamp for p in ordered] == [1.0, 1.0, 2.0, 3.0]
        assert ordered[0].site == 0

    def test_is_two_phase_locking_flag(self):
        assert prec(1.0, Protocol.TWO_PHASE_LOCKING).is_two_phase_locking
        assert not prec(1.0, Protocol.PRECEDENCE_AGREEMENT).is_two_phase_locking

    def test_str_contains_timestamp_and_transaction(self):
        text = str(prec(1.5, Protocol.TIMESTAMP_ORDERING, site=0, seq=3))
        assert "1.5" in text and "T0.3" in text
