"""Lock modes, the semi-lock conflict relation, and the lock table."""

import pytest

from repro.common.errors import ProtocolError
from repro.common.ids import CopyId, RequestId, TransactionId
from repro.common.operations import OperationType
from repro.common.protocol_names import Protocol
from repro.core.locks import LockMode, LockTable, requested_lock_mode


COPY = CopyId(0, 0)


def rid(seq=1, index=0):
    return RequestId(TransactionId(0, seq), index)


class TestLockModeConflicts:
    def test_conflict_matrix_matches_paper(self):
        # Two locks conflict iff at least one is WL or SWL.
        RL, WL, SRL, SWL = LockMode.READ, LockMode.WRITE, LockMode.SEMI_READ, LockMode.SEMI_WRITE
        expected = {
            (RL, RL): False, (RL, SRL): False, (SRL, SRL): False,
            (RL, WL): True, (RL, SWL): True,
            (SRL, WL): True, (SRL, SWL): True,
            (WL, WL): True, (WL, SWL): True, (SWL, SWL): True,
        }
        for (a, b), conflict in expected.items():
            assert a.conflicts_with(b) is conflict
            assert b.conflicts_with(a) is conflict

    def test_semi_flags(self):
        assert LockMode.SEMI_READ.is_semi and LockMode.SEMI_WRITE.is_semi
        assert not LockMode.READ.is_semi and not LockMode.WRITE.is_semi

    def test_downgrade_mapping(self):
        assert LockMode.READ.downgraded() is LockMode.SEMI_READ
        assert LockMode.WRITE.downgraded() is LockMode.SEMI_WRITE
        assert LockMode.SEMI_READ.downgraded() is LockMode.SEMI_READ
        assert LockMode.SEMI_WRITE.downgraded() is LockMode.SEMI_WRITE


class TestRequestedLockMode:
    def test_writers_always_take_write_locks(self):
        for protocol in Protocol:
            assert requested_lock_mode(protocol, OperationType.WRITE) is LockMode.WRITE

    def test_2pl_and_pa_readers_take_read_locks(self):
        assert requested_lock_mode(Protocol.TWO_PHASE_LOCKING, OperationType.READ) is LockMode.READ
        mode = requested_lock_mode(Protocol.PRECEDENCE_AGREEMENT, OperationType.READ)
        assert mode is LockMode.READ

    def test_to_readers_take_semi_read_locks(self):
        assert (
            requested_lock_mode(Protocol.TIMESTAMP_ORDERING, OperationType.READ)
            is LockMode.SEMI_READ
        )


class TestLockTable:
    def test_grant_and_release(self):
        table = LockTable(COPY)
        lock = table.grant(rid(1), TransactionId(0, 1), Protocol.TWO_PHASE_LOCKING,
                           LockMode.WRITE, time=1.0, pre_scheduled=False)
        assert rid(1) in table
        assert table.get(rid(1)) is lock
        released = table.release(rid(1))
        assert released is lock
        assert rid(1) not in table

    def test_double_grant_rejected(self):
        table = LockTable(COPY)
        table.grant(rid(1), TransactionId(0, 1), Protocol.TWO_PHASE_LOCKING,
                    LockMode.READ, time=1.0, pre_scheduled=False)
        with pytest.raises(ProtocolError):
            table.grant(rid(1), TransactionId(0, 1), Protocol.TWO_PHASE_LOCKING,
                        LockMode.READ, time=2.0, pre_scheduled=False)

    def test_release_unknown_rejected(self):
        with pytest.raises(ProtocolError):
            LockTable(COPY).release(rid(9))

    def test_locks_ordered_by_grant_sequence(self):
        table = LockTable(COPY)
        table.grant(rid(2), TransactionId(0, 2), Protocol.TWO_PHASE_LOCKING,
                    LockMode.READ, time=1.0, pre_scheduled=False)
        table.grant(rid(1), TransactionId(0, 1), Protocol.TWO_PHASE_LOCKING,
                    LockMode.READ, time=2.0, pre_scheduled=False)
        assert [lock.request_id for lock in table.locks()] == [rid(2), rid(1)]

    def test_holders_distinct_in_grant_order(self):
        table = LockTable(COPY)
        table.grant(rid(1, 0), TransactionId(0, 1), Protocol.TWO_PHASE_LOCKING,
                    LockMode.READ, time=1.0, pre_scheduled=False)
        table.grant(rid(2, 0), TransactionId(0, 2), Protocol.TWO_PHASE_LOCKING,
                    LockMode.READ, time=2.0, pre_scheduled=False)
        assert table.holders() == (TransactionId(0, 1), TransactionId(0, 2))

    def test_conflicting_locks_excludes_own_transaction(self):
        table = LockTable(COPY)
        table.grant(rid(1), TransactionId(0, 1), Protocol.TWO_PHASE_LOCKING,
                    LockMode.WRITE, time=1.0, pre_scheduled=False)
        conflicts = table.conflicting_locks(LockMode.READ, excluding=TransactionId(0, 1))
        assert conflicts == ()
        conflicts = table.conflicting_locks(LockMode.READ, excluding=TransactionId(0, 2))
        assert len(conflicts) == 1

    def test_conflicting_locks_granted_before_filter(self):
        table = LockTable(COPY)
        first = table.grant(rid(1), TransactionId(0, 1), Protocol.TIMESTAMP_ORDERING,
                            LockMode.SEMI_WRITE, time=1.0, pre_scheduled=False)
        second = table.grant(rid(2), TransactionId(0, 2), Protocol.TIMESTAMP_ORDERING,
                             LockMode.SEMI_READ, time=2.0, pre_scheduled=True)
        earlier = table.conflicting_locks(
            second.mode, excluding=TransactionId(0, 2), granted_before=second.grant_seq
        )
        assert earlier == (first,)
        later = table.conflicting_locks(
            first.mode, excluding=TransactionId(0, 1), granted_before=first.grant_seq
        )
        assert later == ()

    def test_unreleased_with_modes(self):
        table = LockTable(COPY)
        table.grant(rid(1), TransactionId(0, 1), Protocol.TWO_PHASE_LOCKING,
                    LockMode.WRITE, time=1.0, pre_scheduled=False)
        table.grant(rid(2), TransactionId(0, 2), Protocol.TIMESTAMP_ORDERING,
                    LockMode.SEMI_READ, time=2.0, pre_scheduled=True)
        writes = table.unreleased_with_modes([LockMode.WRITE])
        assert len(writes) == 1
        semi = table.unreleased_with_modes([LockMode.SEMI_READ], excluding=TransactionId(0, 2))
        assert semi == ()

    def test_downgrade_changes_mode_in_place(self):
        table = LockTable(COPY)
        lock = table.grant(rid(1), TransactionId(0, 1), Protocol.TIMESTAMP_ORDERING,
                           LockMode.WRITE, time=1.0, pre_scheduled=True)
        lock.downgrade()
        assert lock.mode is LockMode.SEMI_WRITE

    def test_locks_of_transaction(self):
        table = LockTable(COPY)
        table.grant(rid(1, 0), TransactionId(0, 1), Protocol.TWO_PHASE_LOCKING,
                    LockMode.READ, time=1.0, pre_scheduled=False)
        table.grant(rid(2, 0), TransactionId(0, 2), Protocol.TWO_PHASE_LOCKING,
                    LockMode.READ, time=1.5, pre_scheduled=False)
        mine = table.locks_of(TransactionId(0, 1))
        assert len(mine) == 1
        assert mine[0].transaction == TransactionId(0, 1)
