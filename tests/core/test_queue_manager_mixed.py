"""Mixed-protocol behaviour of the unified queue manager, including the
worked example of Section 4.2."""

import pytest

from repro.common.ids import CopyId, TransactionId
from repro.common.protocol_names import Protocol
from repro.core.effects import GrantIssued, RequestRejected
from repro.core.locks import LockMode
from repro.core.queue_manager import QueueManager
from repro.core.serializability import check_serializable
from repro.storage.log import ExecutionLog

from tests.conftest import make_request


def request_for(seq, protocol, op, ts, item=0, site=0, index=0):
    return make_request(
        site=site,
        seq=seq,
        index=index,
        protocol=protocol,
        op=op,
        timestamp=ts,
        item=item,
    )


def grants(manager):
    return [effect for effect in manager.drain_effects() if isinstance(effect, GrantIssued)]


class TestUnifiedPrecedenceAssignment:
    def test_2pl_request_lands_behind_existing_timestamps(self, queue_manager):
        queue_manager.submit(
            request_for(1, Protocol.TIMESTAMP_ORDERING, "w", ts=10.0), now=1.0
        )
        queue_manager.submit(
            request_for(2, Protocol.TWO_PHASE_LOCKING, "w", ts=0.5), now=2.0
        )
        entries = queue_manager.queue_entries()
        assert [entry.transaction.seq for entry in entries] == [1, 2]
        # The 2PL request's precedence timestamp is the biggest seen so far.
        assert entries[1].precedence.timestamp == pytest.approx(10.0)

    def test_2pl_counts_as_biggest_site_id_on_timestamp_ties(self, queue_manager):
        queue_manager.submit(
            request_for(1, Protocol.TWO_PHASE_LOCKING, "w", ts=0.0), now=1.0
        )
        queue_manager.submit(
            request_for(3, Protocol.TIMESTAMP_ORDERING, "w", ts=5.0, site=1), now=2.0
        )
        # The next 2PL request is assigned precedence timestamp 5.0 (the biggest
        # timestamp seen so far); on that tie the 2PL request sorts last.
        queue_manager.submit(
            request_for(2, Protocol.TWO_PHASE_LOCKING, "w", ts=0.0), now=3.0
        )
        entries = queue_manager.queue_entries()
        assert [entry.transaction.seq for entry in entries] == [1, 3, 2]
        assert entries[2].precedence.timestamp == pytest.approx(5.0)

    def test_pa_and_to_share_the_timestamp_space(self, queue_manager):
        queue_manager.submit(
            request_for(1, Protocol.PRECEDENCE_AGREEMENT, "w", ts=5.0), now=1.0
        )
        queue_manager.submit(
            request_for(2, Protocol.TIMESTAMP_ORDERING, "w", ts=3.0), now=2.0
        )
        entries = queue_manager.queue_entries()
        assert [entry.transaction.seq for entry in entries] == [2, 1]


class TestSemiLockInteraction:
    def test_2pl_read_blocked_by_semi_write_lock(self, queue_manager):
        # A T/O writer that downgraded to SWL still blocks 2PL readers.
        queue_manager.submit(
            request_for(1, Protocol.TIMESTAMP_ORDERING, "w", ts=1.0), now=1.0
        )
        queue_manager.downgrade(TransactionId(0, 1), now=2.0)
        queue_manager.drain_effects()
        queue_manager.submit(
            request_for(2, Protocol.TWO_PHASE_LOCKING, "r", ts=0.0), now=3.0
        )
        assert grants(queue_manager) == []
        queue_manager.release(TransactionId(0, 1), now=4.0)
        assert len(grants(queue_manager)) == 1

    def test_to_read_not_blocked_by_semi_write_lock(self, queue_manager):
        queue_manager.submit(
            request_for(1, Protocol.TIMESTAMP_ORDERING, "w", ts=1.0), now=1.0
        )
        queue_manager.downgrade(TransactionId(0, 1), now=2.0)
        queue_manager.drain_effects()
        queue_manager.submit(
            request_for(2, Protocol.TIMESTAMP_ORDERING, "r", ts=2.0), now=3.0
        )
        granted = grants(queue_manager)
        assert len(granted) == 1
        assert granted[0].mode is LockMode.SEMI_READ
        assert granted[0].normal is False

    def test_pa_write_blocked_by_semi_read_lock(self, queue_manager):
        queue_manager.submit(
            request_for(1, Protocol.TIMESTAMP_ORDERING, "r", ts=1.0), now=1.0
        )
        queue_manager.drain_effects()
        queue_manager.submit(
            request_for(2, Protocol.PRECEDENCE_AGREEMENT, "w", ts=2.0), now=2.0
        )
        queue_manager.update_timestamp(TransactionId(0, 2), 2.0, now=2.5)
        assert grants(queue_manager) == []
        queue_manager.release(TransactionId(0, 1), now=3.0)
        assert len(grants(queue_manager)) == 1

    def test_mixed_protocol_rejection_still_applies_to_to(self, queue_manager):
        queue_manager.submit(
            request_for(1, Protocol.PRECEDENCE_AGREEMENT, "w", ts=5.0), now=1.0
        )
        queue_manager.update_timestamp(TransactionId(0, 1), 5.0, now=1.5)
        queue_manager.drain_effects()
        queue_manager.submit(
            request_for(2, Protocol.TIMESTAMP_ORDERING, "r", ts=3.0), now=2.0
        )
        rejected = [e for e in queue_manager.drain_effects() if isinstance(e, RequestRejected)]
        assert len(rejected) == 1


class TestSection42Example:
    """The example of Section 4.2: t1, t2 run T/O, t3 runs 2PL on items x, y, z.

    With raw T/O (no locking of T/O reads) the three transactions could all
    execute and produce a non-serializable execution.  The semi-lock protocol
    prevents it: we drive the three per-item queue managers through the
    paper's interleaving and check that the resulting execution (as far as it
    can proceed) stays conflict serializable.
    """

    def _build(self):
        log = ExecutionLog()
        managers = {
            name: QueueManager(CopyId(item, 0), log)
            for item, name in enumerate("xyz")
        }
        t1 = TransactionId(0, 1)   # T/O
        t2 = TransactionId(1, 2)   # T/O
        t3 = TransactionId(2, 3)   # 2PL
        return log, managers, t1, t2, t3

    def test_paper_interleaving_remains_serializable(self):
        log, managers, t1, t2, t3 = self._build()
        x, y, z = managers["x"], managers["y"], managers["z"]

        # Queue(x): r1 < w3 ; Queue(y): r2 < w1 ; Queue(z): r3 < w2.
        x.submit(make_request(tid=t1, index=0, protocol=Protocol.TIMESTAMP_ORDERING,
                              op="r", item=0, timestamp=1.0), now=1.0)
        x.submit(make_request(tid=t3, index=0, protocol=Protocol.TWO_PHASE_LOCKING,
                              op="w", item=0, timestamp=0.0), now=1.1)
        y.submit(make_request(tid=t2, index=0, protocol=Protocol.TIMESTAMP_ORDERING,
                              op="r", item=1, timestamp=2.0), now=1.2)
        y.submit(make_request(tid=t1, index=1, protocol=Protocol.TIMESTAMP_ORDERING,
                              op="w", item=1, timestamp=1.0), now=1.3)
        z.submit(make_request(tid=t3, index=1, protocol=Protocol.TWO_PHASE_LOCKING,
                              op="r", item=2, timestamp=0.0), now=1.4)
        z.submit(make_request(tid=t2, index=1, protocol=Protocol.TIMESTAMP_ORDERING,
                              op="w", item=2, timestamp=2.0), now=1.5)

        # t1's write at y arrived with timestamp 1.0 < R-TS(y) = 2.0: Basic T/O
        # rejects it, so t1 restarts rather than completing out of order.
        rejected = [e for e in y.drain_effects() if isinstance(e, RequestRejected)]
        assert len(rejected) == 1 and rejected[0].request.transaction == t1

        # t2 executes: its read at y was granted, its write at z waits for t3's
        # 2PL read lock (a semi-lock is not enough for a T/O writer over an RL).
        granted_z = [e for e in z.drain_effects() if isinstance(e, GrantIssued)]
        assert [g.request.transaction for g in granted_z] == [t3]

        # Whatever has been implemented so far is conflict serializable.
        report = check_serializable(log)
        assert report.serializable

    def test_all_to_variant_is_serializable_by_timestamp_order(self):
        log, managers, t1, t2, _t3 = self._build()
        x, y = managers["x"], managers["y"]
        x.submit(make_request(tid=t1, index=0, protocol=Protocol.TIMESTAMP_ORDERING,
                              op="r", item=0, timestamp=1.0), now=1.0)
        x.submit(make_request(tid=t2, index=0, protocol=Protocol.TIMESTAMP_ORDERING,
                              op="w", item=0, timestamp=2.0), now=1.1)
        y.submit(make_request(tid=t2, index=1, protocol=Protocol.TIMESTAMP_ORDERING,
                              op="r", item=1, timestamp=2.0), now=1.2)
        y.submit(make_request(tid=t1, index=1, protocol=Protocol.TIMESTAMP_ORDERING,
                              op="w", item=1, timestamp=1.0), now=1.3)
        # t1's write at y is rejected (out of timestamp order), preventing the cycle.
        rejections = [e for e in y.drain_effects() if isinstance(e, RequestRejected)]
        assert len(rejections) == 1
        x.downgrade(t2, now=2.0)
        x.release(t2, now=2.5)
        y.release(t2, now=2.5)
        assert check_serializable(log).serializable
