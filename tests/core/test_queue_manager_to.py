"""Unified queue manager driven by Basic T/O requests."""

import pytest

from repro.common.ids import CopyId, TransactionId
from repro.common.protocol_names import Protocol
from repro.core.effects import GrantIssued, RequestRejected
from repro.core.locks import LockMode
from repro.core.queue_manager import QueueManager
from repro.storage.log import ExecutionLog

from tests.conftest import make_request


def to_request(seq, op="w", ts=1.0, site=0):
    return make_request(
        site=site, seq=seq, protocol=Protocol.TIMESTAMP_ORDERING, op=op, timestamp=ts
    )


def effects_of(manager, kind):
    return [effect for effect in manager.drain_effects() if isinstance(effect, kind)]


class TestTimestampOrderChecks:
    def test_in_order_writes_granted_sequentially(self, queue_manager):
        queue_manager.submit(to_request(1, "w", ts=1.0), now=1.0)
        granted = effects_of(queue_manager, GrantIssued)
        assert len(granted) == 1
        queue_manager.submit(to_request(2, "w", ts=2.0), now=2.0)
        # The second write conflicts and waits, but is not rejected.
        assert effects_of(queue_manager, RequestRejected) == []

    def test_out_of_order_read_is_rejected(self, queue_manager):
        queue_manager.submit(to_request(1, "w", ts=5.0), now=1.0)
        queue_manager.drain_effects()
        queue_manager.submit(to_request(2, "r", ts=3.0), now=2.0)
        rejected = effects_of(queue_manager, RequestRejected)
        assert len(rejected) == 1
        assert rejected[0].request.transaction == TransactionId(0, 2)
        assert queue_manager.rejections == 1

    def test_out_of_order_write_rejected_by_granted_read(self, queue_manager):
        queue_manager.submit(to_request(1, "r", ts=5.0), now=1.0)
        queue_manager.drain_effects()
        queue_manager.submit(to_request(2, "w", ts=3.0), now=2.0)
        assert len(effects_of(queue_manager, RequestRejected)) == 1

    def test_read_not_rejected_by_granted_read(self, queue_manager):
        queue_manager.submit(to_request(1, "r", ts=5.0), now=1.0)
        queue_manager.drain_effects()
        queue_manager.submit(to_request(2, "r", ts=3.0), now=2.0)
        assert effects_of(queue_manager, RequestRejected) == []

    def test_rejected_request_is_not_enqueued(self, queue_manager):
        queue_manager.submit(to_request(1, "w", ts=5.0), now=1.0)
        queue_manager.submit(to_request(2, "r", ts=3.0), now=2.0)
        assert queue_manager.queue_length() == 1


class TestSemiLockGrants:
    def test_to_reader_gets_semi_read_lock(self, queue_manager):
        queue_manager.submit(to_request(1, "r", ts=1.0), now=1.0)
        granted = effects_of(queue_manager, GrantIssued)
        assert granted[0].mode is LockMode.SEMI_READ

    def test_to_writer_gets_write_lock(self, queue_manager):
        queue_manager.submit(to_request(1, "w", ts=1.0), now=1.0)
        granted = effects_of(queue_manager, GrantIssued)
        assert granted[0].mode is LockMode.WRITE

    def test_later_writer_granted_pre_scheduled_over_semi_read(self, queue_manager):
        # Reader (ts 1) holds an SRL; a later writer (ts 2) may be granted a
        # pre-scheduled WL because only RLs and WLs block T/O writers.
        queue_manager.submit(to_request(1, "r", ts=1.0), now=1.0)
        queue_manager.drain_effects()
        queue_manager.submit(to_request(2, "w", ts=2.0), now=2.0)
        granted = effects_of(queue_manager, GrantIssued)
        assert len(granted) == 1
        assert granted[0].mode is LockMode.WRITE
        assert granted[0].normal is False          # pre-scheduled

    def test_later_reader_blocked_by_write_lock_until_downgrade(self, queue_manager):
        queue_manager.submit(to_request(1, "w", ts=1.0), now=1.0)
        queue_manager.drain_effects()
        queue_manager.submit(to_request(2, "r", ts=2.0), now=2.0)
        assert effects_of(queue_manager, GrantIssued) == []
        queue_manager.downgrade(TransactionId(0, 1), now=3.0)
        granted = effects_of(queue_manager, GrantIssued)
        assert len(granted) == 1
        assert granted[0].mode is LockMode.SEMI_READ
        assert granted[0].normal is False          # the SWL is still held

    def test_normal_grant_issued_when_earlier_conflict_released(self, queue_manager):
        queue_manager.submit(to_request(1, "r", ts=1.0), now=1.0)
        queue_manager.drain_effects()
        queue_manager.submit(to_request(2, "w", ts=2.0), now=2.0)
        queue_manager.drain_effects()              # pre-scheduled WL for T2
        queue_manager.release(TransactionId(0, 1), now=3.0)
        normal_grants = [
            effect
            for effect in effects_of(queue_manager, GrantIssued)
            if effect.normal and effect.request.transaction == TransactionId(0, 2)
        ]
        assert len(normal_grants) == 1

    def test_downgrade_requires_semi_locks_enabled(self):
        manager = QueueManager(CopyId(0, 0), ExecutionLog(), semi_locks_enabled=False)
        manager.submit(to_request(1, "w", ts=1.0), now=1.0)
        with pytest.raises(Exception):
            manager.downgrade(TransactionId(0, 1), now=2.0)


class TestFullLockingFallback:
    def test_to_reader_gets_plain_read_lock_without_semi_locks(self):
        manager = QueueManager(CopyId(0, 0), ExecutionLog(), semi_locks_enabled=False)
        manager.submit(to_request(1, "r", ts=1.0), now=1.0)
        granted = [e for e in manager.drain_effects() if isinstance(e, GrantIssued)]
        assert granted[0].mode is LockMode.READ

    def test_later_writer_waits_for_reader_without_semi_locks(self):
        manager = QueueManager(CopyId(0, 0), ExecutionLog(), semi_locks_enabled=False)
        manager.submit(to_request(1, "r", ts=1.0), now=1.0)
        manager.drain_effects()
        manager.submit(to_request(2, "w", ts=2.0), now=2.0)
        assert [e for e in manager.drain_effects() if isinstance(e, GrantIssued)] == []


class TestImplementationRecording:
    def test_write_recorded_at_downgrade(self, execution_log):
        manager = QueueManager(CopyId(0, 0), execution_log)
        manager.submit(to_request(1, "w", ts=1.0), now=1.0)
        assert execution_log.total_operations() == 0
        manager.downgrade(TransactionId(0, 1), now=2.0)
        assert execution_log.total_operations() == 1
        manager.release(TransactionId(0, 1), now=3.0)
        assert execution_log.total_operations() == 1   # recorded once only

    def test_read_recorded_at_grant(self, execution_log):
        manager = QueueManager(CopyId(0, 0), execution_log)
        manager.submit(to_request(1, "r", ts=1.0), now=1.5)
        assert execution_log.total_operations() == 1
        assert execution_log.all_entries()[0].time == 1.5

    def test_conflicting_to_operations_logged_in_timestamp_order(self, execution_log):
        manager = QueueManager(CopyId(0, 0), execution_log)
        manager.submit(to_request(1, "r", ts=1.0), now=1.0)     # read recorded at grant
        manager.submit(to_request(2, "w", ts=2.0), now=2.0)     # pre-scheduled WL
        manager.downgrade(TransactionId(0, 2), now=3.0)         # write recorded now
        manager.release(TransactionId(0, 1), now=4.0)
        manager.release(TransactionId(0, 2), now=5.0)
        log = execution_log.log_for(CopyId(0, 0))
        transactions = [entry.transaction.seq for entry in log.entries()]
        assert transactions == [1, 2]

    def test_abort_of_to_attempt_withdraws_its_reads(self, execution_log):
        manager = QueueManager(CopyId(0, 0), execution_log)
        manager.submit(to_request(1, "r", ts=1.0), now=1.0)
        manager.abort(TransactionId(0, 1), now=2.0)
        assert execution_log.total_operations() == 0

    def test_read_write_timestamp_registers(self, queue_manager):
        queue_manager.submit(to_request(1, "r", ts=4.0), now=1.0)
        queue_manager.submit(to_request(2, "w", ts=6.0), now=2.0)
        assert queue_manager.read_ts == pytest.approx(4.0)
        assert queue_manager.write_ts == pytest.approx(6.0)
