"""Unified queue manager driven by 2PL requests only."""

import pytest

from repro.common.ids import CopyId, TransactionId
from repro.common.protocol_names import Protocol
from repro.core.effects import GrantIssued
from repro.core.locks import LockMode
from repro.core.queue_manager import QueueManager

from tests.conftest import make_request


def twopl_request(seq, op="w", ts=1.0, index=0, site=0):
    return make_request(
        site=site, seq=seq, index=index, protocol=Protocol.TWO_PHASE_LOCKING, op=op, timestamp=ts
    )


def grants(manager):
    return [effect for effect in manager.drain_effects() if isinstance(effect, GrantIssued)]


class TestBasicGranting:
    def test_first_write_is_granted_immediately(self, queue_manager):
        queue_manager.submit(twopl_request(1, "w"), now=1.0)
        issued = grants(queue_manager)
        assert len(issued) == 1
        assert issued[0].mode is LockMode.WRITE
        assert issued[0].normal is True

    def test_conflicting_write_waits_until_release(self, queue_manager):
        queue_manager.submit(twopl_request(1, "w"), now=1.0)
        queue_manager.drain_effects()
        queue_manager.submit(twopl_request(2, "w"), now=2.0)
        assert grants(queue_manager) == []
        queue_manager.release(TransactionId(0, 1), now=3.0)
        issued = grants(queue_manager)
        assert len(issued) == 1
        assert issued[0].request.transaction == TransactionId(0, 2)

    def test_readers_share_the_data_item(self, queue_manager):
        queue_manager.submit(twopl_request(1, "r"), now=1.0)
        queue_manager.submit(twopl_request(2, "r"), now=2.0)
        issued = grants(queue_manager)
        assert len(issued) == 2
        assert all(effect.mode is LockMode.READ for effect in issued)

    def test_writer_waits_for_readers(self, queue_manager):
        queue_manager.submit(twopl_request(1, "r"), now=1.0)
        queue_manager.submit(twopl_request(2, "r"), now=2.0)
        queue_manager.drain_effects()
        queue_manager.submit(twopl_request(3, "w"), now=3.0)
        assert grants(queue_manager) == []
        queue_manager.release(TransactionId(0, 1), now=4.0)
        assert grants(queue_manager) == []
        queue_manager.release(TransactionId(0, 2), now=5.0)
        issued = grants(queue_manager)
        assert len(issued) == 1
        assert issued[0].request.transaction == TransactionId(0, 3)

    def test_reader_behind_writer_waits(self, queue_manager):
        queue_manager.submit(twopl_request(1, "w"), now=1.0)
        queue_manager.drain_effects()
        queue_manager.submit(twopl_request(2, "r"), now=2.0)
        assert grants(queue_manager) == []

    def test_fcfs_order_among_2pl_requests(self, queue_manager):
        queue_manager.submit(twopl_request(1, "w"), now=1.0)
        queue_manager.submit(twopl_request(2, "w"), now=2.0)
        queue_manager.submit(twopl_request(3, "w"), now=3.0)
        queue_manager.drain_effects()
        order = []
        for holder in (1, 2, 3):
            queue_manager.release(TransactionId(0, holder), now=10.0 + holder)
            order.extend(e.request.transaction.seq for e in grants(queue_manager))
        assert order == [2, 3]

    def test_2pl_grants_are_never_pre_scheduled(self, queue_manager):
        queue_manager.submit(twopl_request(1, "w"), now=1.0)
        queue_manager.submit(twopl_request(2, "w"), now=2.0)
        queue_manager.release(TransactionId(0, 1), now=3.0)
        for effect in grants(queue_manager):
            assert effect.normal is True


class TestReleaseAndLog:
    def test_release_records_write_implementation(self, execution_log):
        manager = QueueManager(CopyId(0, 0), execution_log)
        manager.submit(twopl_request(1, "w"), now=1.0)
        assert execution_log.total_operations() == 0
        manager.release(TransactionId(0, 1), now=2.0)
        assert execution_log.total_operations() == 1
        entry = execution_log.all_entries()[0]
        assert entry.transaction == TransactionId(0, 1)
        assert entry.time == 2.0

    def test_read_is_recorded_at_grant_time(self, execution_log):
        manager = QueueManager(CopyId(0, 0), execution_log)
        manager.submit(twopl_request(1, "r"), now=1.0)
        assert execution_log.total_operations() == 1
        assert execution_log.all_entries()[0].time == 1.0
        manager.release(TransactionId(0, 1), now=2.0)
        assert execution_log.total_operations() == 1  # not recorded twice

    def test_abort_withdraws_recorded_reads(self, execution_log):
        manager = QueueManager(CopyId(0, 0), execution_log)
        manager.submit(twopl_request(1, "r"), now=1.0)
        manager.abort(TransactionId(0, 1), now=2.0)
        assert execution_log.total_operations() == 0

    def test_abort_releases_locks_and_unblocks_waiters(self, queue_manager):
        queue_manager.submit(twopl_request(1, "w"), now=1.0)
        queue_manager.submit(twopl_request(2, "w"), now=2.0)
        queue_manager.drain_effects()
        queue_manager.abort(TransactionId(0, 1), now=3.0)
        issued = grants(queue_manager)
        assert [e.request.transaction.seq for e in issued] == [2]

    def test_release_removes_queue_entries(self, queue_manager):
        queue_manager.submit(twopl_request(1, "w"), now=1.0)
        queue_manager.release(TransactionId(0, 1), now=2.0)
        assert queue_manager.queue_length() == 0
        assert queue_manager.granted_locks() == ()


class TestWaitEdges:
    def test_waiter_edges_point_to_lock_holder(self, queue_manager):
        queue_manager.submit(twopl_request(1, "w"), now=1.0)
        queue_manager.submit(twopl_request(2, "w"), now=2.0)
        edges = queue_manager.wait_edges()
        assert (TransactionId(0, 2), TransactionId(0, 1)) in edges

    def test_no_edges_when_nothing_waits(self, queue_manager):
        queue_manager.submit(twopl_request(1, "w"), now=1.0)
        assert queue_manager.wait_edges() == []

    def test_waiter_edges_point_to_earlier_ungranted_entries(self, queue_manager):
        queue_manager.submit(twopl_request(1, "w"), now=1.0)
        queue_manager.submit(twopl_request(2, "w"), now=2.0)
        queue_manager.submit(twopl_request(3, "w"), now=3.0)
        edges = queue_manager.wait_edges()
        assert (TransactionId(0, 3), TransactionId(0, 2)) in edges
        assert (TransactionId(0, 3), TransactionId(0, 1)) in edges

    def test_blocked_transactions_listed(self, queue_manager):
        queue_manager.submit(twopl_request(1, "w"), now=1.0)
        queue_manager.submit(twopl_request(2, "w"), now=2.0)
        assert queue_manager.blocked_transactions() == (TransactionId(0, 2),)


class TestStatistics:
    def test_grant_counter(self, queue_manager):
        queue_manager.submit(twopl_request(1, "r"), now=1.0)
        queue_manager.submit(twopl_request(2, "r"), now=2.0)
        assert queue_manager.grants_issued == 2
        assert queue_manager.rejections == 0
        assert queue_manager.backoffs == 0

    def test_wrong_copy_rejected(self, queue_manager):
        foreign = make_request(protocol=Protocol.TWO_PHASE_LOCKING, item=5)
        with pytest.raises(Exception):
            queue_manager.submit(foreign, now=1.0)
