"""Unified queue manager driven by PA requests (propose/confirm negotiation)."""

import pytest

from repro.common.ids import CopyId, TransactionId
from repro.common.protocol_names import Protocol
from repro.core.effects import BackoffIssued, GrantIssued, RequestRejected
from repro.core.locks import LockMode
from repro.core.queue_manager import QueueManager

from tests.conftest import make_request


def pa_request(seq, op="w", ts=1.0, site=0, interval=1.0):
    return make_request(
        site=site,
        seq=seq,
        protocol=Protocol.PRECEDENCE_AGREEMENT,
        op=op,
        timestamp=ts,
        backoff_interval=interval,
    )


def effects_of(manager, kind):
    return [effect for effect in manager.drain_effects() if isinstance(effect, kind)]


class TestProposals:
    def test_every_pa_request_first_receives_a_proposal(self, queue_manager):
        queue_manager.submit(pa_request(1, "w", ts=1.0), now=1.0)
        proposals = effects_of(queue_manager, BackoffIssued)
        assert len(proposals) == 1
        assert proposals[0].new_timestamp == pytest.approx(1.0)

    def test_request_is_not_granted_before_confirmation(self, queue_manager):
        queue_manager.submit(pa_request(1, "w", ts=1.0), now=1.0)
        assert [e for e in queue_manager.drain_effects() if isinstance(e, GrantIssued)] == []
        assert queue_manager.granted_locks() == ()

    def test_conflicting_proposal_is_backed_off(self, queue_manager):
        queue_manager.submit(pa_request(1, "w", ts=5.0), now=1.0)
        queue_manager.update_timestamp(TransactionId(0, 1), 5.0, now=1.5)   # confirm & grant
        queue_manager.drain_effects()
        queue_manager.submit(pa_request(2, "w", ts=3.0, interval=1.0), now=2.0)
        proposals = effects_of(queue_manager, BackoffIssued)
        assert len(proposals) == 1
        assert proposals[0].new_timestamp == pytest.approx(6.0)
        assert queue_manager.backoffs == 1

    def test_acceptable_proposal_does_not_count_as_backoff(self, queue_manager):
        queue_manager.submit(pa_request(1, "w", ts=5.0), now=1.0)
        assert queue_manager.backoffs == 0

    def test_pa_requests_are_never_rejected(self, queue_manager):
        queue_manager.submit(pa_request(1, "w", ts=5.0), now=1.0)
        queue_manager.update_timestamp(TransactionId(0, 1), 5.0, now=1.5)
        queue_manager.drain_effects()
        queue_manager.submit(pa_request(2, "w", ts=1.0), now=2.0)
        assert effects_of(queue_manager, RequestRejected) == []
        assert queue_manager.rejections == 0


class TestConfirmation:
    def test_confirmation_makes_the_request_grantable(self, queue_manager):
        queue_manager.submit(pa_request(1, "w", ts=2.0), now=1.0)
        queue_manager.drain_effects()
        queue_manager.update_timestamp(TransactionId(0, 1), 2.0, now=2.0)
        granted = effects_of(queue_manager, GrantIssued)
        assert len(granted) == 1
        assert granted[0].mode is LockMode.WRITE
        assert granted[0].normal is True

    def test_confirmation_with_larger_agreed_timestamp_reorders_queue(self, queue_manager):
        queue_manager.submit(pa_request(1, "w", ts=2.0), now=1.0)
        queue_manager.submit(pa_request(2, "w", ts=3.0), now=1.5)
        queue_manager.drain_effects()
        # Transaction 1's agreement elsewhere moved it to timestamp 9.
        queue_manager.update_timestamp(TransactionId(0, 1), 9.0, now=2.0)
        # Transaction 2 confirms at its own timestamp and is now first.
        queue_manager.update_timestamp(TransactionId(0, 2), 3.0, now=2.5)
        granted = effects_of(queue_manager, GrantIssued)
        assert [g.request.transaction.seq for g in granted] == [2]
        entries = queue_manager.queue_entries()
        assert [entry.transaction.seq for entry in entries] == [2, 1]

    def test_pending_head_blocks_later_requests(self, queue_manager):
        queue_manager.submit(pa_request(1, "w", ts=1.0), now=1.0)    # pending, head
        queue_manager.submit(pa_request(2, "w", ts=2.0), now=1.5)
        queue_manager.drain_effects()
        queue_manager.update_timestamp(TransactionId(0, 2), 2.0, now=2.0)
        # Transaction 2 is confirmed but transaction 1 (still pending) is ahead.
        assert effects_of(queue_manager, GrantIssued) == []
        queue_manager.update_timestamp(TransactionId(0, 1), 1.0, now=3.0)
        granted = effects_of(queue_manager, GrantIssued)
        assert [g.request.transaction.seq for g in granted] == [1]

    def test_pa_grant_sequence_follows_agreed_timestamps(self, queue_manager):
        queue_manager.submit(pa_request(1, "w", ts=4.0), now=1.0)
        queue_manager.submit(pa_request(2, "w", ts=2.0), now=1.2)
        queue_manager.update_timestamp(TransactionId(0, 1), 4.0, now=2.0)
        queue_manager.update_timestamp(TransactionId(0, 2), 2.0, now=2.1)
        queue_manager.drain_effects()
        order = []
        queue_manager.release(TransactionId(0, 2), now=3.0)
        order.extend(g.request.transaction.seq for g in effects_of(queue_manager, GrantIssued))
        queue_manager.release(TransactionId(0, 1), now=4.0)
        assert order == [1]

    def test_confirmation_of_unknown_transaction_is_noop(self, queue_manager):
        queue_manager.update_timestamp(TransactionId(0, 99), 5.0, now=1.0)
        assert queue_manager.drain_effects() == []


class TestGrantedTimestampBumpRepair:
    """Direct exercise of the one-round-PA repair path (granted entry re-timestamped)."""

    def test_intermediate_to_conflict_is_rejected(self, queue_manager):
        # PA transaction granted at ts 2, a T/O write slips in at ts 3, and the
        # PA agreement later moves the granted read to ts 5: the T/O write must
        # be re-handled (rejected) to preserve (E1).
        queue_manager.submit(pa_request(1, "r", ts=2.0), now=1.0)
        queue_manager.update_timestamp(TransactionId(0, 1), 2.0, now=1.5)
        queue_manager.drain_effects()
        to_write = make_request(seq=2, protocol=Protocol.TIMESTAMP_ORDERING, op="w", timestamp=3.0)
        queue_manager.submit(to_write, now=2.0)
        queue_manager.drain_effects()
        queue_manager.update_timestamp(TransactionId(0, 1), 5.0, now=3.0)
        rejected = effects_of(queue_manager, RequestRejected)
        assert len(rejected) == 1
        assert rejected[0].request.transaction == TransactionId(0, 2)

    def test_intermediate_pa_conflict_is_backed_off_past_new_timestamp(self, queue_manager):
        queue_manager.submit(pa_request(1, "r", ts=2.0), now=1.0)
        queue_manager.update_timestamp(TransactionId(0, 1), 2.0, now=1.5)
        queue_manager.drain_effects()
        queue_manager.submit(pa_request(2, "w", ts=3.0, interval=1.0), now=2.0)
        queue_manager.drain_effects()
        queue_manager.update_timestamp(TransactionId(0, 1), 5.0, now=3.0)
        proposals = effects_of(queue_manager, BackoffIssued)
        assert len(proposals) == 1
        assert proposals[0].new_timestamp > 5.0

    def test_bump_raises_read_timestamp_register(self, queue_manager):
        queue_manager.submit(pa_request(1, "r", ts=2.0), now=1.0)
        queue_manager.update_timestamp(TransactionId(0, 1), 2.0, now=1.5)
        queue_manager.update_timestamp(TransactionId(0, 1), 7.0, now=2.0)
        assert queue_manager.read_ts == pytest.approx(7.0)

    def test_non_conflicting_intermediate_requests_are_untouched(self, queue_manager):
        queue_manager.submit(pa_request(1, "r", ts=2.0), now=1.0)
        queue_manager.update_timestamp(TransactionId(0, 1), 2.0, now=1.5)
        queue_manager.drain_effects()
        other_read = make_request(
            seq=2, protocol=Protocol.TIMESTAMP_ORDERING, op="r", timestamp=3.0
        )
        queue_manager.submit(other_read, now=2.0)
        queue_manager.drain_effects()
        queue_manager.update_timestamp(TransactionId(0, 1), 5.0, now=3.0)
        assert effects_of(queue_manager, RequestRejected) == []


class TestReleaseAndLog:
    def test_release_after_execution_records_write(self, execution_log):
        manager = QueueManager(CopyId(0, 0), execution_log)
        manager.submit(pa_request(1, "w", ts=1.0), now=1.0)
        manager.update_timestamp(TransactionId(0, 1), 1.0, now=1.5)
        manager.release(TransactionId(0, 1), now=2.0)
        assert execution_log.total_operations() == 1

    def test_waiters_granted_after_pa_release(self, queue_manager):
        queue_manager.submit(pa_request(1, "w", ts=1.0), now=1.0)
        queue_manager.update_timestamp(TransactionId(0, 1), 1.0, now=1.2)
        queue_manager.submit(pa_request(2, "w", ts=2.0), now=1.5)
        queue_manager.update_timestamp(TransactionId(0, 2), 2.0, now=1.7)
        queue_manager.drain_effects()
        queue_manager.release(TransactionId(0, 1), now=2.0)
        granted = effects_of(queue_manager, GrantIssued)
        assert [g.request.transaction.seq for g in granted] == [2]

    def test_pending_entries_produce_no_wait_edges(self, queue_manager):
        queue_manager.submit(pa_request(1, "w", ts=1.0), now=1.0)     # pending
        queue_manager.submit(pa_request(2, "w", ts=2.0), now=1.5)
        queue_manager.update_timestamp(TransactionId(0, 2), 2.0, now=2.0)
        edges = queue_manager.wait_edges()
        # Transaction 2 waits behind the pending entry of transaction 1, but a
        # pending entry resolves on its own, so no wait-for edge is reported.
        assert edges == []
