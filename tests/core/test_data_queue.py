"""The per-copy data queue and its HD(j) rule."""

import pytest

from repro.common.errors import ProtocolError
from repro.common.ids import TransactionId
from repro.common.protocol_names import Protocol
from repro.core.data_queue import DataQueue, EntryStatus, QueuedRequest
from repro.core.precedence import Precedence

from tests.conftest import make_request


def entry(ts, seq=1, site=0, protocol=Protocol.TIMESTAMP_ORDERING, status=EntryStatus.ACCEPTED):
    request = make_request(site=site, seq=seq, protocol=protocol, timestamp=ts, item=0)
    precedence = Precedence(
        timestamp=ts,
        protocol=protocol,
        site=site,
        transaction=request.transaction,
    )
    return QueuedRequest(request=request, precedence=precedence, status=status)


class TestInsertionAndOrdering:
    def test_entries_kept_in_precedence_order(self):
        queue = DataQueue()
        queue.insert(entry(3.0, seq=1))
        queue.insert(entry(1.0, seq=2))
        queue.insert(entry(2.0, seq=3))
        assert [e.precedence.timestamp for e in queue.entries()] == [1.0, 2.0, 3.0]

    def test_duplicate_request_rejected(self):
        queue = DataQueue()
        first = entry(1.0, seq=1)
        queue.insert(first)
        with pytest.raises(ProtocolError):
            queue.insert(entry(2.0, seq=1))

    def test_len_and_iter(self):
        queue = DataQueue()
        queue.insert(entry(1.0, seq=1))
        queue.insert(entry(2.0, seq=2))
        assert len(queue) == 2
        assert len(list(queue)) == 2


class TestHeadRule:
    def test_head_is_first_ungranted(self):
        queue = DataQueue()
        first = entry(1.0, seq=1)
        second = entry(2.0, seq=2)
        queue.insert(first)
        queue.insert(second)
        assert queue.head() is first
        first.granted = True
        assert queue.head() is second

    def test_head_none_when_everything_granted(self):
        queue = DataQueue()
        only = entry(1.0, seq=1)
        only.granted = True
        queue.insert(only)
        assert queue.head() is None

    def test_head_none_on_empty_queue(self):
        assert DataQueue().head() is None

    def test_ungranted_and_granted_views(self):
        queue = DataQueue()
        a, b = entry(1.0, seq=1), entry(2.0, seq=2)
        a.granted = True
        queue.insert(a)
        queue.insert(b)
        assert queue.granted() == (a,)
        assert queue.ungranted() == (b,)


class TestLookupAndRemoval:
    def test_find_by_request_id(self):
        queue = DataQueue()
        target = entry(1.0, seq=1)
        queue.insert(target)
        assert queue.find(target.request_id) is target
        assert queue.find(entry(9.0, seq=99).request_id) is None

    def test_entries_of_transaction(self):
        queue = DataQueue()
        a = entry(1.0, seq=1)
        b = entry(2.0, seq=2)
        queue.insert(a)
        queue.insert(b)
        assert queue.entries_of(TransactionId(0, 1)) == (a,)

    def test_remove_returns_entry(self):
        queue = DataQueue()
        target = entry(1.0, seq=1)
        queue.insert(target)
        assert queue.remove(target.request_id) is target
        assert len(queue) == 0

    def test_remove_missing_raises(self):
        with pytest.raises(ProtocolError):
            DataQueue().remove(entry(1.0).request_id)

    def test_remove_transaction_removes_all_of_its_entries(self):
        queue = DataQueue()
        a = entry(1.0, seq=1)
        b = entry(2.0, seq=2)
        queue.insert(a)
        queue.insert(b)
        removed = queue.remove_transaction(TransactionId(0, 1))
        assert removed == (a,)
        assert queue.entries() == (b,)


class TestReordering:
    def test_resort_after_precedence_change(self):
        queue = DataQueue()
        a, b = entry(1.0, seq=1), entry(2.0, seq=2)
        queue.insert(a)
        queue.insert(b)
        a.precedence = a.precedence.with_timestamp(5.0)
        queue.resort()
        assert queue.entries() == (b, a)

    def test_entries_before(self):
        queue = DataQueue()
        a, b, c = entry(1.0, seq=1), entry(2.0, seq=2), entry(3.0, seq=3)
        for item in (a, b, c):
            queue.insert(item)
        assert queue.entries_before(c) == (a, b)
        assert queue.entries_before(a) == ()

    def test_blocked_status_flag(self):
        blocked = entry(1.0, status=EntryStatus.BLOCKED)
        assert blocked.is_blocked
        accepted = entry(1.0, status=EntryStatus.ACCEPTED)
        assert not accepted.is_blocked
