"""Conflict-graph oracle."""

import pytest

from repro.common.errors import SerializationViolationError
from repro.common.ids import CopyId, TransactionId
from repro.common.operations import OperationType
from repro.common.protocol_names import Protocol
from repro.core.serializability import ConflictGraph, check_serializable
from repro.storage.log import ExecutionLog


T1, T2, T3 = (TransactionId(0, i) for i in range(1, 4))
X, Y = CopyId(0, 0), CopyId(1, 0)


def record(log, copy, tid, op, time, attempt=0):
    op_type = OperationType.READ if op == "r" else OperationType.WRITE
    log.record(copy, tid, op_type, Protocol.TWO_PHASE_LOCKING, time, attempt)


class TestConflictGraphConstruction:
    def test_conflicting_operations_create_edges(self):
        log = ExecutionLog()
        record(log, X, T1, "r", 1.0)
        record(log, X, T2, "w", 2.0)
        graph = ConflictGraph.from_execution_log(log)
        assert graph.has_edge(T1, T2)
        assert not graph.has_edge(T2, T1)

    def test_reads_do_not_conflict(self):
        log = ExecutionLog()
        record(log, X, T1, "r", 1.0)
        record(log, X, T2, "r", 2.0)
        graph = ConflictGraph.from_execution_log(log)
        assert graph.edge_count() == 0

    def test_same_transaction_operations_do_not_conflict(self):
        log = ExecutionLog()
        record(log, X, T1, "r", 1.0)
        record(log, X, T1, "w", 2.0)
        graph = ConflictGraph.from_execution_log(log)
        assert graph.edge_count() == 0

    def test_all_transactions_become_nodes_even_without_conflicts(self):
        log = ExecutionLog()
        record(log, X, T1, "r", 1.0)
        record(log, Y, T2, "r", 1.0)
        graph = ConflictGraph.from_execution_log(log)
        assert set(graph.nodes()) == {T1, T2}


class TestCycleDetection:
    def test_serializable_execution(self):
        log = ExecutionLog()
        record(log, X, T1, "w", 1.0)
        record(log, X, T2, "r", 2.0)
        record(log, Y, T1, "w", 1.5)
        record(log, Y, T2, "w", 2.5)
        report = check_serializable(log)
        assert report.serializable
        assert report.serialization_order.index(T1) < report.serialization_order.index(T2)
        assert report.cycle is None

    def test_non_serializable_execution_detected(self):
        log = ExecutionLog()
        record(log, X, T1, "w", 1.0)
        record(log, X, T2, "w", 2.0)     # T1 -> T2 at X
        record(log, Y, T2, "w", 1.0)
        record(log, Y, T1, "w", 2.0)     # T2 -> T1 at Y
        report = check_serializable(log)
        assert not report.serializable
        assert set(report.cycle) == {T1, T2}

    def test_three_way_cycle_detected(self):
        log = ExecutionLog()
        z = CopyId(2, 0)
        record(log, X, T1, "w", 1.0)
        record(log, X, T2, "w", 2.0)
        record(log, Y, T2, "w", 1.0)
        record(log, Y, T3, "w", 2.0)
        record(log, z, T3, "w", 1.0)
        record(log, z, T1, "w", 2.0)
        report = check_serializable(log)
        assert not report.serializable
        assert set(report.cycle) == {T1, T2, T3}

    def test_empty_log_is_serializable(self):
        report = check_serializable(ExecutionLog())
        assert report.serializable
        assert report.serialization_order == []

    def test_raise_on_violation(self):
        log = ExecutionLog()
        record(log, X, T1, "w", 1.0)
        record(log, X, T2, "w", 2.0)
        record(log, Y, T2, "w", 1.0)
        record(log, Y, T1, "w", 2.0)
        report = check_serializable(log)
        with pytest.raises(SerializationViolationError):
            report.raise_on_violation()

    def test_raise_on_violation_noop_when_serializable(self):
        report = check_serializable(ExecutionLog())
        report.raise_on_violation()     # must not raise


class TestTopologicalOrder:
    def test_order_respects_all_edges(self):
        graph = ConflictGraph()
        graph.add_edge(T1, T2)
        graph.add_edge(T2, T3)
        graph.add_edge(T1, T3)
        order = graph.topological_order()
        assert order.index(T1) < order.index(T2) < order.index(T3)

    def test_order_none_for_cyclic_graph(self):
        graph = ConflictGraph()
        graph.add_edge(T1, T2)
        graph.add_edge(T2, T1)
        assert graph.topological_order() is None

    def test_deterministic_tie_breaking(self):
        graph = ConflictGraph()
        graph.add_node(T3)
        graph.add_node(T1)
        graph.add_node(T2)
        assert graph.topological_order() == [T1, T2, T3]

    def test_report_counts(self):
        log = ExecutionLog()
        record(log, X, T1, "w", 1.0)
        record(log, X, T2, "r", 2.0)
        report = check_serializable(log)
        assert report.transactions_checked == 2
        assert report.conflict_edges == 1


class TestCommittedView:
    """The committed-attempt filter behind fault-run audits."""

    def test_stale_attempt_entries_are_excluded(self):
        log = ExecutionLog()
        # T1's attempt-0 read was stranded by an abort dropped at a crashed
        # site; its attempt-1 re-read and T2's write are the real execution.
        record(log, X, T1, "r", 1.0, attempt=0)
        record(log, X, T2, "w", 2.0, attempt=0)
        record(log, X, T1, "r", 3.0, attempt=1)
        report = check_serializable(log, {T1: 1, T2: 0})
        assert report.serializable
        assert report.serialization_order == [T2, T1]
        assert report.conflict_edges == 1

    def test_stale_entry_would_otherwise_flip_the_verdict(self):
        log = ExecutionLog()
        record(log, X, T1, "r", 1.0, attempt=0)   # stale: aborted attempt
        record(log, X, T2, "w", 2.0, attempt=0)
        record(log, Y, T2, "w", 3.0, attempt=0)
        record(log, Y, T1, "w", 4.0, attempt=1)
        # Unfiltered, the stale read produces the cycle T1 -> T2 -> T1.
        assert not check_serializable(log).serializable
        assert check_serializable(log, {T1: 1, T2: 0}).serializable

    def test_uncommitted_transactions_are_excluded_entirely(self):
        log = ExecutionLog()
        record(log, X, T1, "w", 1.0)
        record(log, X, T3, "r", 2.0)
        report = check_serializable(log, {T1: 0})
        assert report.transactions_checked == 1

    def test_no_filter_audits_everything(self):
        log = ExecutionLog()
        record(log, X, T1, "r", 1.0, attempt=0)
        record(log, X, T2, "w", 2.0)
        assert check_serializable(log).transactions_checked == 2
