"""The STL-based per-transaction protocol selector."""

from repro.common.config import SystemConfig, WorkloadConfig
from repro.common.ids import TransactionId
from repro.common.protocol_names import Protocol
from repro.common.transactions import TransactionSpec
from repro.selection.parameters import ParameterEstimator
from repro.selection.selector import STLProtocolSelector
from repro.system.metrics import MetricsCollector


def make_selector(exploration=3, refresh=5):
    return STLProtocolSelector.from_configs(
        SystemConfig(num_sites=2, num_items=16),
        WorkloadConfig(arrival_rate=20.0, num_transactions=100),
        exploration_transactions=exploration,
        refresh_interval=refresh,
    )


def spec(seq=1, reads=2, writes=1):
    return TransactionSpec(
        tid=TransactionId(0, seq),
        read_items=tuple(range(reads)),
        write_items=tuple(range(50, 50 + writes)),
    )


class TestExploration:
    def test_first_decisions_round_robin_across_protocols(self):
        selector = make_selector(exploration=6)
        chosen = [selector.choose(spec(seq=i), now=float(i)) for i in range(1, 7)]
        assert chosen[:3] == [
            Protocol.TWO_PHASE_LOCKING,
            Protocol.TIMESTAMP_ORDERING,
            Protocol.PRECEDENCE_AGREEMENT,
        ]
        assert chosen[3:] == chosen[:3]

    def test_decisions_counter(self):
        selector = make_selector()
        for index in range(5):
            selector.choose(spec(seq=index + 1), now=float(index))
        assert selector.decisions == 5

    def test_choice_counts_sum_to_decisions(self):
        selector = make_selector()
        for index in range(7):
            selector.choose(spec(seq=index + 1), now=float(index))
        assert sum(selector.choice_counts().values()) == 7


class TestSelection:
    def test_post_exploration_choices_use_stl_breakdown(self):
        selector = make_selector(exploration=0)
        protocol = selector.choose(spec(), now=1.0)
        breakdown = selector.breakdown(spec())
        assert str(protocol) == breakdown.best()

    def test_breakdown_is_cached_per_class(self):
        selector = make_selector(exploration=0)
        first = selector.breakdown(spec(seq=1, reads=2, writes=1))
        second = selector.breakdown(spec(seq=2, reads=2, writes=1))
        assert first is second

    def test_different_classes_have_separate_entries(self):
        selector = make_selector(exploration=0)
        small = selector.breakdown(spec(reads=1, writes=0))
        large = selector.breakdown(spec(reads=4, writes=4))
        assert small is not large

    def test_bind_metrics_refreshes_estimates(self):
        selector = make_selector(exploration=0)
        before = selector.breakdown(spec())
        metrics = MetricsCollector()
        selector.bind_metrics(metrics)
        after = selector.breakdown(spec())
        # The cache must have been dropped; values may or may not change, but a
        # new breakdown object is computed.
        assert after is not before

    def test_choose_returns_protocol_enum(self):
        selector = make_selector(exploration=0)
        assert isinstance(selector.choose(spec(), now=0.0), Protocol)


class TestConstruction:
    def test_from_estimator_directly(self):
        estimator = ParameterEstimator(
            SystemConfig(), WorkloadConfig(arrival_rate=5.0, num_transactions=10)
        )
        selector = STLProtocolSelector(estimator, exploration_transactions=0)
        assert isinstance(selector.choose(spec(), now=0.0), Protocol)
