"""The STL-based per-transaction protocol selector."""

import pytest

from repro.common.config import SystemConfig, WorkloadConfig
from repro.common.errors import ConfigurationError
from repro.common.ids import TransactionId
from repro.common.protocol_names import Protocol
from repro.common.transactions import TransactionSpec
from repro.selection.parameters import (
    DecayingParameterEstimator,
    ParameterEstimator,
    ProtocolCostParameters,
)
from repro.selection.selector import SELECTION_MODES, STLProtocolSelector
from repro.system.metrics import MetricsCollector


def make_selector(exploration=3, refresh=5, mode="cumulative"):
    return STLProtocolSelector.from_configs(
        SystemConfig(num_sites=2, num_items=16),
        WorkloadConfig(arrival_rate=20.0, num_transactions=100),
        exploration_transactions=exploration,
        refresh_interval=refresh,
        mode=mode,
    )


def spec(seq=1, reads=2, writes=1):
    return TransactionSpec(
        tid=TransactionId(0, seq),
        read_items=tuple(range(reads)),
        write_items=tuple(range(50, 50 + writes)),
    )


class TestExploration:
    def test_first_decisions_round_robin_across_protocols(self):
        selector = make_selector(exploration=6)
        chosen = [selector.choose(spec(seq=i), now=float(i)) for i in range(1, 7)]
        assert chosen[:3] == [
            Protocol.TWO_PHASE_LOCKING,
            Protocol.TIMESTAMP_ORDERING,
            Protocol.PRECEDENCE_AGREEMENT,
        ]
        assert chosen[3:] == chosen[:3]

    def test_decisions_counter(self):
        selector = make_selector()
        for index in range(5):
            selector.choose(spec(seq=index + 1), now=float(index))
        assert selector.decisions == 5

    def test_choice_counts_sum_to_decisions(self):
        selector = make_selector()
        for index in range(7):
            selector.choose(spec(seq=index + 1), now=float(index))
        assert sum(selector.choice_counts().values()) == 7


class TestSelection:
    def test_post_exploration_choices_use_stl_breakdown(self):
        selector = make_selector(exploration=0)
        protocol = selector.choose(spec(), now=1.0)
        breakdown = selector.breakdown(spec())
        assert str(protocol) == breakdown.best()

    def test_breakdown_is_cached_per_class(self):
        selector = make_selector(exploration=0)
        first = selector.breakdown(spec(seq=1, reads=2, writes=1))
        second = selector.breakdown(spec(seq=2, reads=2, writes=1))
        assert first is second

    def test_different_classes_have_separate_entries(self):
        selector = make_selector(exploration=0)
        small = selector.breakdown(spec(reads=1, writes=0))
        large = selector.breakdown(spec(reads=4, writes=4))
        assert small is not large

    def test_bind_metrics_refreshes_estimates(self):
        selector = make_selector(exploration=0)
        before = selector.breakdown(spec())
        metrics = MetricsCollector()
        selector.bind_metrics(metrics)
        after = selector.breakdown(spec())
        # The cache must have been dropped; values may or may not change, but a
        # new breakdown object is computed.
        assert after is not before

    def test_choose_returns_protocol_enum(self):
        selector = make_selector(exploration=0)
        assert isinstance(selector.choose(spec(), now=0.0), Protocol)


class TestConstruction:
    def test_from_estimator_directly(self):
        estimator = ParameterEstimator(
            SystemConfig(), WorkloadConfig(arrival_rate=5.0, num_transactions=10)
        )
        selector = STLProtocolSelector(estimator, exploration_transactions=0)
        assert isinstance(selector.choose(spec(), now=0.0), Protocol)

    def test_unknown_mode_is_rejected(self):
        estimator = ParameterEstimator(
            SystemConfig(), WorkloadConfig(arrival_rate=5.0, num_transactions=10)
        )
        with pytest.raises(ConfigurationError):
            STLProtocolSelector(estimator, mode="sometimes")

    @pytest.mark.parametrize("mode", SELECTION_MODES)
    def test_every_mode_constructs_and_chooses(self, mode):
        selector = make_selector(mode=mode)
        assert selector.mode == mode
        assert isinstance(selector.choose(spec(), now=0.0), Protocol)

    def test_adaptive_mode_uses_decaying_estimator(self):
        selector = make_selector(mode="adaptive")
        assert isinstance(selector._estimator, DecayingParameterEstimator)


class _MutableEstimator(ParameterEstimator):
    """Estimator whose 2PL abort probability the test can flip mid-run."""

    def __init__(self, system, workload):
        super().__init__(system, workload)
        self.abort_probability = 0.0

    def protocol_parameters(self, protocol):
        base = super().protocol_parameters(protocol)
        if protocol.is_two_phase_locking:
            return ProtocolCostParameters(
                protocol=protocol,
                lock_time=base.lock_time,
                lock_time_aborted=base.lock_time_aborted,
                abort_probability=self.abort_probability,
            )
        return base


def _mutable_selector(refresh=5, mode="cumulative"):
    estimator = _MutableEstimator(
        SystemConfig(num_sites=2, num_items=16),
        WorkloadConfig(arrival_rate=20.0, num_transactions=100),
    )
    selector = STLProtocolSelector(
        estimator, exploration_transactions=0, refresh_interval=refresh, mode=mode
    )
    return selector, estimator


class TestCacheInvalidation:
    """Regression: a refresh must never leave stale per-class breakdowns behind."""

    def test_stale_breakdown_not_served_after_refresh(self):
        selector, estimator = _mutable_selector(refresh=5)
        stale = selector.breakdown(spec())
        # The estimates change drastically between refreshes...
        estimator.abort_probability = 0.9
        # ...and once the decision counter crosses a refresh boundary the
        # cached breakdown for the same transaction class must be recomputed
        # from the fresh estimates, not served from the cache.
        for index in range(1, 7):
            selector.choose(spec(seq=index), now=float(index))
        fresh = selector.breakdown(spec())
        assert fresh is not stale
        assert fresh.two_phase_locking > stale.two_phase_locking

    def test_every_refresh_drops_the_cache(self):
        selector, estimator = _mutable_selector(refresh=3)
        probed = spec(reads=3, writes=2)
        seen = [selector.breakdown(probed)]
        for round_index in range(1, 4):
            estimator.abort_probability = 0.1 * round_index
            for step in range(3):
                selector.choose(spec(seq=10 * round_index + step), now=float(step))
            seen.append(selector.breakdown(probed))
        # One fresh object per refresh epoch: nothing stale was ever reused.
        assert len({id(breakdown) for breakdown in seen}) == 4

    def test_frozen_mode_keeps_the_cache_after_its_single_refresh(self):
        # Without bound metrics the estimator is warm immediately (priors
        # are final), so the freeze lands on the first refresh tick.
        selector, estimator = _mutable_selector(refresh=3, mode="frozen")
        selector.choose(spec(seq=1), now=0.0)  # triggers the one frozen refresh
        frozen_breakdown = selector.breakdown(spec())
        estimator.abort_probability = 0.9
        for index in range(2, 12):
            selector.choose(spec(seq=index), now=float(index))
        assert selector.breakdown(spec()) is frozen_breakdown
        assert selector.refreshes == 2  # construction + the post-exploration one

    def test_refresh_interval_one_refreshes_every_decision(self):
        # Regression: `since % 1 == 1` was unsatisfiable, so interval=1
        # silently meant "never refresh after exploration".
        selector, _ = _mutable_selector(refresh=1)
        baseline = selector.refreshes
        for index in range(1, 6):
            selector.choose(spec(seq=index), now=float(index))
        assert selector.refreshes == baseline + 5

    def test_frozen_mode_waits_for_warm_measurements(self):
        # Regression: freezing on the first post-exploration decision pinned
        # configuration priors, because the explored transactions had not
        # all committed yet.  The freeze must wait until every protocol's
        # measured estimates exist.
        estimator = ParameterEstimator(
            SystemConfig(num_sites=2, num_items=16),
            WorkloadConfig(arrival_rate=20.0, num_transactions=100),
            min_observations=2,
        )
        selector = STLProtocolSelector(
            estimator, exploration_transactions=0, refresh_interval=2, mode="frozen"
        )
        metrics = MetricsCollector()
        selector.bind_metrics(metrics)
        selector.choose(spec(seq=1), now=0.0)
        assert not selector._frozen  # cold metrics: keep refreshing
        from repro.common.transactions import TransactionOutcome

        for protocol in Protocol:
            for index in range(2):
                metrics.record_commit(
                    TransactionOutcome(
                        spec=spec(seq=100 + index),
                        protocol=protocol,
                        arrival_time=0.0,
                        commit_time=1.0,
                    )
                )
        before = selector.refreshes
        selector.choose(spec(seq=2), now=1.0)  # not a tick (interval 2)
        selector.choose(spec(seq=3), now=2.0)  # tick: warm now, freeze here
        assert selector._frozen
        assert selector.refreshes == before + 1
        frozen_count = selector.refreshes
        for index in range(4, 12):
            selector.choose(spec(seq=index), now=float(index))
        assert selector.refreshes == frozen_count
