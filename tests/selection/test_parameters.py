"""Parameter estimation for the STL selector."""

import pytest

from repro.common.config import SystemConfig, WorkloadConfig
from repro.common.ids import CopyId, TransactionId
from repro.common.operations import OperationType
from repro.common.protocol_names import Protocol
from repro.common.transactions import TransactionOutcome, TransactionSpec
from repro.selection.parameters import (
    DecayingParameterEstimator,
    ParameterEstimator,
    ProtocolCostParameters,
    SystemLoadParameters,
)
from repro.system.metrics import MetricsCollector


def make_estimator(min_observations=3):
    return ParameterEstimator(
        SystemConfig(num_sites=2, num_items=16),
        WorkloadConfig(arrival_rate=10.0, num_transactions=50),
        min_observations=min_observations,
    )


class TestValidation:
    def test_load_parameters_reject_bad_read_fraction(self):
        with pytest.raises(ValueError):
            SystemLoadParameters(
                system_throughput=1.0,
                read_throughput=0.5,
                write_throughput=0.5,
                read_fraction=1.5,
                requests_per_transaction=2.0,
            )

    def test_load_parameters_reject_small_transaction_size(self):
        with pytest.raises(ValueError):
            SystemLoadParameters(
                system_throughput=1.0,
                read_throughput=0.5,
                write_throughput=0.5,
                read_fraction=0.5,
                requests_per_transaction=0.5,
            )

    def test_cost_parameters_reject_bad_probability(self):
        with pytest.raises(ValueError):
            ProtocolCostParameters(
                protocol=Protocol.TWO_PHASE_LOCKING,
                lock_time=0.1,
                lock_time_aborted=0.2,
                abort_probability=1.5,
            )

    def test_cost_parameters_reject_negative_lock_time(self):
        with pytest.raises(ValueError):
            ProtocolCostParameters(
                protocol=Protocol.TWO_PHASE_LOCKING,
                lock_time=-0.1,
                lock_time_aborted=0.2,
            )


class TestPriors:
    def test_priors_available_without_metrics(self):
        estimator = make_estimator()
        load = estimator.system_parameters()
        assert load.system_throughput > 0
        for protocol in Protocol:
            costs = estimator.protocol_parameters(protocol)
            assert costs.lock_time > 0
            assert 0.0 <= costs.abort_probability <= 1.0

    def test_priors_scale_with_arrival_rate(self):
        low = ParameterEstimator(
            SystemConfig(), WorkloadConfig(arrival_rate=1.0, num_transactions=10)
        ).system_parameters()
        high = ParameterEstimator(
            SystemConfig(), WorkloadConfig(arrival_rate=100.0, num_transactions=10)
        ).system_parameters()
        assert high.system_throughput > low.system_throughput

    def test_prior_contention_grows_with_load(self):
        low = ParameterEstimator(
            SystemConfig(), WorkloadConfig(arrival_rate=1.0, num_transactions=10)
        ).protocol_parameters(Protocol.TIMESTAMP_ORDERING)
        high = ParameterEstimator(
            SystemConfig(), WorkloadConfig(arrival_rate=200.0, num_transactions=10)
        ).protocol_parameters(Protocol.TIMESTAMP_ORDERING)
        assert high.write_failure_probability >= low.write_failure_probability


class TestMeasuredValues:
    def _metrics_with_history(self, committed=10):
        metrics = MetricsCollector()
        spec = TransactionSpec(
            tid=TransactionId(0, 1), read_items=(0,), write_items=(1,), arrival_time=0.0
        )
        for index in range(committed):
            metrics.record_attempt(Protocol.TIMESTAMP_ORDERING)
            metrics.record_request_issued(Protocol.TIMESTAMP_ORDERING, OperationType.READ)
            metrics.record_request_issued(Protocol.TIMESTAMP_ORDERING, OperationType.WRITE)
            metrics.record_lock_time(Protocol.TIMESTAMP_ORDERING, 0.25, aborted=False)
            metrics.record_commit(
                TransactionOutcome(
                    spec=spec,
                    protocol=Protocol.TIMESTAMP_ORDERING,
                    arrival_time=float(index),
                    commit_time=float(index) + 0.5,
                )
            )
        metrics.record_rejection(Protocol.TIMESTAMP_ORDERING, OperationType.READ)
        return metrics

    def test_measured_lock_time_replaces_prior(self):
        estimator = make_estimator(min_observations=3)
        metrics = self._metrics_with_history(committed=10)
        estimator.bind_metrics(metrics)
        costs = estimator.protocol_parameters(Protocol.TIMESTAMP_ORDERING)
        assert costs.lock_time == pytest.approx(0.25)

    def test_measured_rejection_probability_used(self):
        estimator = make_estimator(min_observations=3)
        metrics = self._metrics_with_history(committed=10)
        estimator.bind_metrics(metrics)
        costs = estimator.protocol_parameters(Protocol.TIMESTAMP_ORDERING)
        assert costs.read_failure_probability == pytest.approx(0.1)

    def test_prior_used_below_observation_threshold(self):
        estimator = make_estimator(min_observations=50)
        metrics = self._metrics_with_history(committed=10)
        estimator.bind_metrics(metrics)
        unbound = make_estimator(min_observations=50)
        prior = unbound.protocol_parameters(Protocol.TIMESTAMP_ORDERING)
        measured = estimator.protocol_parameters(Protocol.TIMESTAMP_ORDERING)
        assert measured.lock_time == pytest.approx(prior.lock_time)

    def test_protocols_without_data_keep_priors(self):
        estimator = make_estimator(min_observations=3)
        estimator.bind_metrics(self._metrics_with_history(committed=10))
        pa_costs = estimator.protocol_parameters(Protocol.PRECEDENCE_AGREEMENT)
        prior = make_estimator().protocol_parameters(Protocol.PRECEDENCE_AGREEMENT)
        assert pa_costs.lock_time == pytest.approx(prior.lock_time)


def make_decaying(decay=0.5, min_observations=3):
    return DecayingParameterEstimator(
        SystemConfig(num_sites=2, num_items=16),
        WorkloadConfig(arrival_rate=10.0, num_transactions=50),
        decay=decay,
        min_observations=min_observations,
    )


def _record_epoch(metrics, lock_time, committed=6, commit_offset=0.0):
    """Record one epoch of T/O history with the given committed lock time."""
    spec = TransactionSpec(
        tid=TransactionId(0, 1), read_items=(0,), write_items=(1,), arrival_time=0.0
    )
    for index in range(committed):
        metrics.record_attempt(Protocol.TIMESTAMP_ORDERING)
        metrics.record_request_issued(Protocol.TIMESTAMP_ORDERING, OperationType.WRITE)
        metrics.record_lock_time(Protocol.TIMESTAMP_ORDERING, lock_time, aborted=False)
        metrics.record_commit(
            TransactionOutcome(
                spec=spec,
                protocol=Protocol.TIMESTAMP_ORDERING,
                arrival_time=commit_offset + float(index),
                commit_time=commit_offset + float(index) + 0.5,
            )
        )


class TestDecayingEstimator:
    def test_decay_must_be_a_fraction(self):
        with pytest.raises(ValueError):
            make_decaying(decay=1.0)

    def test_falls_back_to_priors_before_any_observation(self):
        estimator = make_decaying()
        prior = ParameterEstimator(
            SystemConfig(num_sites=2, num_items=16),
            WorkloadConfig(arrival_rate=10.0, num_transactions=50),
        )
        assert estimator.protocol_parameters(Protocol.TIMESTAMP_ORDERING) == (
            prior.protocol_parameters(Protocol.TIMESTAMP_ORDERING)
        )

    def test_refresh_without_metrics_is_a_noop(self):
        estimator = make_decaying()
        estimator.refresh_observations()  # must not raise

    def test_window_tracks_recent_epochs(self):
        estimator = make_decaying(decay=0.25)
        metrics = MetricsCollector()
        estimator.bind_metrics(metrics)
        _record_epoch(metrics, lock_time=0.2)
        estimator.refresh_observations()
        early = estimator.protocol_parameters(Protocol.TIMESTAMP_ORDERING).lock_time
        # A regime change: much longer lock times from now on.
        for epoch in range(1, 4):
            _record_epoch(metrics, lock_time=2.0, commit_offset=10.0 * epoch)
            estimator.refresh_observations()
        late = estimator.protocol_parameters(Protocol.TIMESTAMP_ORDERING).lock_time
        assert early == pytest.approx(0.2)
        # With decay 0.25 the stale epoch's weight is below 2%, so the
        # windowed mean sits essentially at the new regime's value.
        assert late > 1.8

    def test_cumulative_estimator_keeps_averaging_dead_regimes(self):
        # The contrast that motivates the subclass: same history, cumulative
        # estimate stays dragged toward the old regime.
        cumulative = ParameterEstimator(
            SystemConfig(num_sites=2, num_items=16),
            WorkloadConfig(arrival_rate=10.0, num_transactions=50),
            min_observations=3,
        )
        metrics = MetricsCollector()
        cumulative.bind_metrics(metrics)
        _record_epoch(metrics, lock_time=0.2, committed=18)
        _record_epoch(metrics, lock_time=2.0, committed=6, commit_offset=20.0)
        value = cumulative.protocol_parameters(Protocol.TIMESTAMP_ORDERING).lock_time
        assert value < 1.0

    def test_unused_protocol_falls_back_once_its_window_decays(self):
        estimator = make_decaying(decay=0.5, min_observations=3)
        metrics = MetricsCollector()
        estimator.bind_metrics(metrics)
        _record_epoch(metrics, lock_time=0.3)
        estimator.refresh_observations()
        assert estimator.protocol_parameters(
            Protocol.TIMESTAMP_ORDERING
        ).lock_time == pytest.approx(0.3)
        # No new T/O observations: the window halves each refresh until it
        # drops under the observation floor and the cumulative path takes
        # over again (which still reports the measured 0.3 here).
        for _ in range(6):
            estimator.refresh_observations()
        window_weight = estimator._window[f"{Protocol.TIMESTAMP_ORDERING}.committed"]
        assert window_weight < 3
        assert estimator.protocol_parameters(Protocol.TIMESTAMP_ORDERING).lock_time > 0

    def test_system_parameters_use_windowed_grants(self):
        estimator = make_decaying(min_observations=2)
        metrics = MetricsCollector()
        estimator.bind_metrics(metrics)
        copy = CopyId(item=1, site=0)
        metrics.record_arrival(Protocol.TIMESTAMP_ORDERING, 0.0)
        metrics.record_commit(
            TransactionOutcome(
                spec=TransactionSpec(
                    tid=TransactionId(0, 1), read_items=(0,), write_items=(1,)
                ),
                protocol=Protocol.TIMESTAMP_ORDERING,
                arrival_time=0.0,
                commit_time=4.0,
            )
        )
        for _ in range(6):
            metrics.record_grant(copy, OperationType.READ)
        for _ in range(2):
            metrics.record_grant(copy, OperationType.WRITE)
        estimator.refresh_observations()
        load = estimator.system_parameters()
        assert load.read_fraction == pytest.approx(0.75)
        assert load.system_throughput == pytest.approx(2.0)  # 8 grants / 4 time units
