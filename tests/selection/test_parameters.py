"""Parameter estimation for the STL selector."""

import pytest

from repro.common.config import SystemConfig, WorkloadConfig
from repro.common.ids import TransactionId
from repro.common.operations import OperationType
from repro.common.protocol_names import Protocol
from repro.common.transactions import TransactionOutcome, TransactionSpec
from repro.selection.parameters import (
    ParameterEstimator,
    ProtocolCostParameters,
    SystemLoadParameters,
)
from repro.system.metrics import MetricsCollector


def make_estimator(min_observations=3):
    return ParameterEstimator(
        SystemConfig(num_sites=2, num_items=16),
        WorkloadConfig(arrival_rate=10.0, num_transactions=50),
        min_observations=min_observations,
    )


class TestValidation:
    def test_load_parameters_reject_bad_read_fraction(self):
        with pytest.raises(ValueError):
            SystemLoadParameters(
                system_throughput=1.0,
                read_throughput=0.5,
                write_throughput=0.5,
                read_fraction=1.5,
                requests_per_transaction=2.0,
            )

    def test_load_parameters_reject_small_transaction_size(self):
        with pytest.raises(ValueError):
            SystemLoadParameters(
                system_throughput=1.0,
                read_throughput=0.5,
                write_throughput=0.5,
                read_fraction=0.5,
                requests_per_transaction=0.5,
            )

    def test_cost_parameters_reject_bad_probability(self):
        with pytest.raises(ValueError):
            ProtocolCostParameters(
                protocol=Protocol.TWO_PHASE_LOCKING,
                lock_time=0.1,
                lock_time_aborted=0.2,
                abort_probability=1.5,
            )

    def test_cost_parameters_reject_negative_lock_time(self):
        with pytest.raises(ValueError):
            ProtocolCostParameters(
                protocol=Protocol.TWO_PHASE_LOCKING,
                lock_time=-0.1,
                lock_time_aborted=0.2,
            )


class TestPriors:
    def test_priors_available_without_metrics(self):
        estimator = make_estimator()
        load = estimator.system_parameters()
        assert load.system_throughput > 0
        for protocol in Protocol:
            costs = estimator.protocol_parameters(protocol)
            assert costs.lock_time > 0
            assert 0.0 <= costs.abort_probability <= 1.0

    def test_priors_scale_with_arrival_rate(self):
        low = ParameterEstimator(
            SystemConfig(), WorkloadConfig(arrival_rate=1.0, num_transactions=10)
        ).system_parameters()
        high = ParameterEstimator(
            SystemConfig(), WorkloadConfig(arrival_rate=100.0, num_transactions=10)
        ).system_parameters()
        assert high.system_throughput > low.system_throughput

    def test_prior_contention_grows_with_load(self):
        low = ParameterEstimator(
            SystemConfig(), WorkloadConfig(arrival_rate=1.0, num_transactions=10)
        ).protocol_parameters(Protocol.TIMESTAMP_ORDERING)
        high = ParameterEstimator(
            SystemConfig(), WorkloadConfig(arrival_rate=200.0, num_transactions=10)
        ).protocol_parameters(Protocol.TIMESTAMP_ORDERING)
        assert high.write_failure_probability >= low.write_failure_probability


class TestMeasuredValues:
    def _metrics_with_history(self, committed=10):
        metrics = MetricsCollector()
        spec = TransactionSpec(
            tid=TransactionId(0, 1), read_items=(0,), write_items=(1,), arrival_time=0.0
        )
        for index in range(committed):
            metrics.record_attempt(Protocol.TIMESTAMP_ORDERING)
            metrics.record_request_issued(Protocol.TIMESTAMP_ORDERING, OperationType.READ)
            metrics.record_request_issued(Protocol.TIMESTAMP_ORDERING, OperationType.WRITE)
            metrics.record_lock_time(Protocol.TIMESTAMP_ORDERING, 0.25, aborted=False)
            metrics.record_commit(
                TransactionOutcome(
                    spec=spec,
                    protocol=Protocol.TIMESTAMP_ORDERING,
                    arrival_time=float(index),
                    commit_time=float(index) + 0.5,
                )
            )
        metrics.record_rejection(Protocol.TIMESTAMP_ORDERING, OperationType.READ)
        return metrics

    def test_measured_lock_time_replaces_prior(self):
        estimator = make_estimator(min_observations=3)
        metrics = self._metrics_with_history(committed=10)
        estimator.bind_metrics(metrics)
        costs = estimator.protocol_parameters(Protocol.TIMESTAMP_ORDERING)
        assert costs.lock_time == pytest.approx(0.25)

    def test_measured_rejection_probability_used(self):
        estimator = make_estimator(min_observations=3)
        metrics = self._metrics_with_history(committed=10)
        estimator.bind_metrics(metrics)
        costs = estimator.protocol_parameters(Protocol.TIMESTAMP_ORDERING)
        assert costs.read_failure_probability == pytest.approx(0.1)

    def test_prior_used_below_observation_threshold(self):
        estimator = make_estimator(min_observations=50)
        metrics = self._metrics_with_history(committed=10)
        estimator.bind_metrics(metrics)
        unbound = make_estimator(min_observations=50)
        prior = unbound.protocol_parameters(Protocol.TIMESTAMP_ORDERING)
        measured = estimator.protocol_parameters(Protocol.TIMESTAMP_ORDERING)
        assert measured.lock_time == pytest.approx(prior.lock_time)

    def test_protocols_without_data_keep_priors(self):
        estimator = make_estimator(min_observations=3)
        estimator.bind_metrics(self._metrics_with_history(committed=10))
        pa_costs = estimator.protocol_parameters(Protocol.PRECEDENCE_AGREEMENT)
        prior = make_estimator().protocol_parameters(Protocol.PRECEDENCE_AGREEMENT)
        assert pa_costs.lock_time == pytest.approx(prior.lock_time)
