"""The System Throughput Loss model (STL', and the per-protocol formulas)."""

import math

import pytest

from repro.common.ids import TransactionId
from repro.common.protocol_names import Protocol
from repro.common.transactions import TransactionSpec
from repro.selection.parameters import ProtocolCostParameters, SystemLoadParameters
from repro.selection.stl import STLBreakdown, ThroughputLossModel


def load(system_throughput=100.0, read=2.0, write=1.0, read_fraction=0.7, k=4.0):
    return SystemLoadParameters(
        system_throughput=system_throughput,
        read_throughput=read,
        write_throughput=write,
        read_fraction=read_fraction,
        requests_per_transaction=k,
    )


def spec(reads=2, writes=1):
    return TransactionSpec(
        tid=TransactionId(0, 1),
        read_items=tuple(range(reads)),
        write_items=tuple(range(100, 100 + writes)),
    )


def costs(protocol, lock_time=0.1, aborted=0.2, abort_p=0.0, read_p=0.0, write_p=0.0):
    return ProtocolCostParameters(
        protocol=protocol,
        lock_time=lock_time,
        lock_time_aborted=aborted,
        abort_probability=abort_p,
        read_failure_probability=read_p,
        write_failure_probability=write_p,
    )


class TestSTLPrime:
    def test_zero_duration_gives_zero_loss(self):
        model = ThroughputLossModel(load())
        assert model.stl_prime(5.0, 0.0) == 0.0

    def test_loss_at_or_above_capacity_is_capped(self):
        model = ThroughputLossModel(load(system_throughput=10.0))
        assert model.stl_prime(50.0, 2.0) == pytest.approx(20.0)

    def test_no_escalation_when_increment_is_zero(self):
        # With zero write throughput and all-read workload nothing escalates.
        model = ThroughputLossModel(load(read=2.0, write=0.0, read_fraction=1.0))
        assert model.stl_prime(3.0, 2.0) == pytest.approx(6.0)

    def test_loss_grows_with_duration(self):
        model = ThroughputLossModel(load())
        assert model.stl_prime(5.0, 0.2) < model.stl_prime(5.0, 0.4)

    def test_loss_grows_with_initial_loss(self):
        model = ThroughputLossModel(load())
        assert model.stl_prime(2.0, 0.5) < model.stl_prime(6.0, 0.5)

    def test_escalation_makes_loss_superlinear_in_duration(self):
        model = ThroughputLossModel(load(system_throughput=50.0, read=5.0, write=5.0, k=8.0))
        short = model.stl_prime(5.0, 0.1)
        long = model.stl_prime(5.0, 1.0)
        # With blocking escalation the long window loses more than 10x the short one.
        assert long > 10.0 * short

    def test_loss_bounded_by_capacity_times_duration(self):
        model = ThroughputLossModel(load(system_throughput=30.0))
        assert model.stl_prime(10.0, 1.0) <= 30.0 * 1.0 + 1e-9

    def test_negative_initial_loss_treated_as_zero(self):
        model = ThroughputLossModel(load())
        assert model.stl_prime(-5.0, 1.0) >= 0.0

    def test_naive_recursion_matches_dp_roughly(self):
        model = ThroughputLossModel(load(), time_steps=16)
        dp = model.stl_prime(3.0, 0.3)
        naive = model.naive_stl_prime(3.0, 0.3)
        assert naive == pytest.approx(dp, rel=0.35)

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            ThroughputLossModel(load(), time_steps=0)
        with pytest.raises(ValueError):
            ThroughputLossModel(load(), max_levels=0)


class TestTransactionLoss:
    def test_reads_block_only_writers(self):
        model = ThroughputLossModel(load(read=2.0, write=1.0))
        assert model.transaction_loss(1, 0) == pytest.approx(1.0)

    def test_writes_block_readers_and_writers(self):
        model = ThroughputLossModel(load(read=2.0, write=1.0))
        assert model.transaction_loss(0, 1) == pytest.approx(3.0)

    def test_loss_is_additive(self):
        model = ThroughputLossModel(load(read=2.0, write=1.0))
        assert model.transaction_loss(2, 3) == pytest.approx(2 * 1.0 + 3 * 3.0)


class TestProtocolFormulas:
    def test_2pl_without_aborts_equals_base_loss(self):
        model = ThroughputLossModel(load())
        base = model.stl_prime(model.transaction_loss(2, 1), 0.1)
        value = model.stl_two_phase_locking(spec(), costs(Protocol.TWO_PHASE_LOCKING))
        assert value == pytest.approx(base)

    def test_2pl_abort_probability_increases_cost(self):
        model = ThroughputLossModel(load())
        cheap = model.stl_two_phase_locking(spec(), costs(Protocol.TWO_PHASE_LOCKING, abort_p=0.0))
        expensive_costs = costs(Protocol.TWO_PHASE_LOCKING, abort_p=0.4)
        pricey = model.stl_two_phase_locking(spec(), expensive_costs)
        assert pricey > cheap

    def test_to_rejection_probability_increases_cost(self):
        model = ThroughputLossModel(load())
        cheap = model.stl_timestamp_ordering(spec(), costs(Protocol.TIMESTAMP_ORDERING))
        pricey = model.stl_timestamp_ordering(
            spec(), costs(Protocol.TIMESTAMP_ORDERING, read_p=0.3, write_p=0.3)
        )
        assert pricey > cheap

    def test_to_cost_is_infinite_when_success_impossible(self):
        model = ThroughputLossModel(load())
        value = model.stl_timestamp_ordering(
            spec(), costs(Protocol.TIMESTAMP_ORDERING, read_p=1.0, write_p=1.0)
        )
        assert math.isinf(value)

    def test_pa_backoff_probability_increases_cost(self):
        model = ThroughputLossModel(load())
        cheap = model.stl_precedence_agreement(spec(), costs(Protocol.PRECEDENCE_AGREEMENT))
        pricey = model.stl_precedence_agreement(
            spec(), costs(Protocol.PRECEDENCE_AGREEMENT, read_p=0.4, write_p=0.4)
        )
        assert pricey > cheap

    def test_pa_penalty_softer_than_to_for_same_failure_probability(self):
        # A back-off costs one extra blocked period; a rejection repeats the whole
        # transaction, so with identical parameters PA's STL must not exceed T/O's.
        model = ThroughputLossModel(load())
        to_value = model.stl_timestamp_ordering(
            spec(), costs(Protocol.TIMESTAMP_ORDERING, read_p=0.3, write_p=0.3)
        )
        pa_value = model.stl_precedence_agreement(
            spec(), costs(Protocol.PRECEDENCE_AGREEMENT, read_p=0.3, write_p=0.3)
        )
        assert pa_value <= to_value + 1e-9

    def test_larger_transactions_cost_more(self):
        model = ThroughputLossModel(load())
        small = model.stl_two_phase_locking(spec(1, 1), costs(Protocol.TWO_PHASE_LOCKING))
        large = model.stl_two_phase_locking(spec(4, 4), costs(Protocol.TWO_PHASE_LOCKING))
        assert large > small

    def test_evaluate_returns_all_three(self):
        model = ThroughputLossModel(load())
        breakdown = model.evaluate(
            spec(),
            costs(Protocol.TWO_PHASE_LOCKING),
            costs(Protocol.TIMESTAMP_ORDERING),
            costs(Protocol.PRECEDENCE_AGREEMENT),
        )
        assert isinstance(breakdown, STLBreakdown)
        assert set(breakdown.as_dict()) == {"2PL", "T/O", "PA"}


class TestBreakdown:
    def test_best_picks_minimum(self):
        breakdown = STLBreakdown(
            two_phase_locking=3.0, timestamp_ordering=2.0, precedence_agreement=5.0
        )
        assert breakdown.best() == "T/O"

    def test_best_ties_prefer_pa(self):
        breakdown = STLBreakdown(
            two_phase_locking=2.0, timestamp_ordering=2.0, precedence_agreement=2.0
        )
        assert breakdown.best() == "PA"
