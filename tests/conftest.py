"""Shared fixtures and small factories used across the test suite."""

from __future__ import annotations

from typing import Optional

import pytest

from repro.common.config import NetworkConfig, SystemConfig, WorkloadConfig
from repro.common.ids import CopyId, RequestId, TransactionId
from repro.common.operations import OperationType
from repro.common.protocol_names import Protocol
from repro.core.queue_manager import QueueManager
from repro.core.requests import Request
from repro.storage.log import ExecutionLog


def make_tid(site: int = 0, seq: int = 1) -> TransactionId:
    return TransactionId(site=site, seq=seq)


def make_request(
    *,
    tid: Optional[TransactionId] = None,
    site: int = 0,
    seq: int = 1,
    index: int = 0,
    attempt: int = 0,
    protocol: Protocol = Protocol.TWO_PHASE_LOCKING,
    op: str = "w",
    item: int = 0,
    copy_site: int = 0,
    timestamp: float = 1.0,
    backoff_interval: float = 1.0,
    issuer: str = "ri-0",
) -> Request:
    """Build a request with sensible defaults for queue-manager unit tests."""
    transaction = tid if tid is not None else TransactionId(site=site, seq=seq)
    op_type = OperationType.READ if op == "r" else OperationType.WRITE
    return Request(
        request_id=RequestId(transaction, index, attempt),
        transaction=transaction,
        protocol=protocol,
        op_type=op_type,
        copy=CopyId(item, copy_site),
        timestamp=timestamp,
        backoff_interval=backoff_interval,
        issuer=issuer,
    )


@pytest.fixture
def execution_log() -> ExecutionLog:
    return ExecutionLog()


@pytest.fixture
def queue_manager(execution_log: ExecutionLog) -> QueueManager:
    """A queue manager for copy D0@0 with semi-locks enabled."""
    return QueueManager(CopyId(0, 0), execution_log)


@pytest.fixture
def small_system() -> SystemConfig:
    """A small but multi-site system configuration for integration tests."""
    return SystemConfig(
        num_sites=3,
        num_items=24,
        replication_factor=1,
        network=NetworkConfig(fixed_delay=0.005, variable_delay=0.005, local_delay=0.001),
        io_time=0.002,
        deadlock_detection_period=0.2,
        restart_delay=0.02,
        seed=7,
    )


@pytest.fixture
def small_workload() -> WorkloadConfig:
    """A short workload that keeps integration tests fast but non-trivial."""
    return WorkloadConfig(
        arrival_rate=30.0,
        num_transactions=80,
        min_size=2,
        max_size=5,
        read_fraction=0.6,
        compute_time=0.003,
        hotspot_probability=0.3,
        hotspot_fraction=0.15,
        seed=11,
    )
