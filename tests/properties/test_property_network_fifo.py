"""Property: per-(sender, receiver) channels stay FIFO under any delays.

The network promises that a message never overtakes an earlier message on
the same channel, whatever the variable-delay draws and delay-spike
multipliers do to individual latencies.  These tests drive randomized send
schedules — many senders, random send times, exponential variable delays,
and randomized spike windows — and compare each channel's delivery order
against the naive model (delivery order == send order), including the
cross-channel property that deliveries respect causality per channel while
unrelated channels interleave freely.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import DelaySpike, FaultConfig, NetworkConfig
from repro.sim.actor import Actor, Message
from repro.sim.faults import FaultInjector
from repro.sim.network import Network
from repro.sim.rng import RandomStreams
from repro.sim.simulator import Simulator


class Recorder(Actor):
    """Records every delivered message in delivery order."""

    def __init__(self, name, site):
        super().__init__(name, site)
        self.received = []

    def handle(self, message: Message) -> None:
        self.received.append(message)


@st.composite
def send_schedules(draw):
    """A randomized multi-sender send schedule plus network shape knobs."""
    sends = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2),   # sender index
                st.integers(min_value=0, max_value=2),   # receiver index
                st.floats(min_value=0.0, max_value=5.0),  # send time
            ),
            min_size=1,
            max_size=60,
        )
    )
    seed = draw(st.integers(min_value=0, max_value=2**16))
    variable_delay = draw(st.floats(min_value=0.0, max_value=0.5))
    spikes = draw(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=4.0),   # spike start
                st.floats(min_value=0.1, max_value=2.0),   # spike duration
                st.floats(min_value=1.0, max_value=50.0),  # multiplier
            ),
            max_size=3,
        )
    )
    return sends, seed, variable_delay, spikes


def deliver_all(sends, seed, variable_delay, spikes):
    """Run one schedule through the network; returns the receiver actors."""
    simulator = Simulator()
    config = NetworkConfig(fixed_delay=0.01, variable_delay=variable_delay, local_delay=0.001)
    faults = None
    if spikes:
        fault_config = FaultConfig(
            spikes=tuple(
                DelaySpike(at=at, duration=duration, multiplier=multiplier)
                for at, duration, multiplier in spikes
            )
        )
        faults = FaultInjector(simulator, fault_config, num_sites=3, rng=RandomStreams(seed))
    network = Network(simulator, config, RandomStreams(seed), faults=faults)
    senders = [Recorder(f"s{index}", index) for index in range(3)]
    receivers = [Recorder(f"r{index}", index) for index in range(3)]
    for actor in senders + receivers:
        network.register(actor)
    for sequence, (sender_index, receiver_index, send_time) in enumerate(sends):
        simulator.schedule_at(
            send_time,
            lambda s=sender_index, r=receiver_index, n=sequence: network.send(
                senders[s], f"r{r}", "msg", payload=(senders[s].name, n)
            ),
            label="send",
        )
    simulator.run()
    return receivers


class TestChannelFifoProperty:
    @given(send_schedules())
    @settings(max_examples=120, deadline=None)
    def test_per_channel_delivery_order_matches_send_order(self, schedule):
        sends, seed, variable_delay, spikes = schedule
        receivers = deliver_all(sends, seed, variable_delay, spikes)
        # Naive model: per (sender, receiver) channel, messages arrive in the
        # order they were sent — by simulated send time, with the scheduling
        # order breaking ties (the payload carries the schedule sequence).
        for index, receiver in enumerate(receivers):
            expected = {}
            for sequence, (sender, target, send_time) in enumerate(sends):
                if target == index:
                    expected.setdefault(f"s{sender}", []).append((send_time, sequence))
            delivered = {}
            for message in receiver.received:
                sender_name, sequence = message.payload
                delivered.setdefault(sender_name, []).append(sequence)
            for sender_name, sequences in delivered.items():
                model = [sequence for _, sequence in sorted(expected[sender_name])]
                assert sequences == model

    @given(send_schedules())
    @settings(max_examples=60, deadline=None)
    def test_every_message_is_delivered_exactly_once(self, schedule):
        sends, seed, variable_delay, spikes = schedule
        receivers = deliver_all(sends, seed, variable_delay, spikes)
        delivered = sorted(
            message.payload[1] for receiver in receivers for message in receiver.received
        )
        assert delivered == list(range(len(sends)))

    @given(send_schedules())
    @settings(max_examples=60, deadline=None)
    def test_deliver_times_never_precede_send_times(self, schedule):
        sends, seed, variable_delay, spikes = schedule
        receivers = deliver_all(sends, seed, variable_delay, spikes)
        for receiver in receivers:
            for message in receiver.received:
                assert message.deliver_time > message.send_time
