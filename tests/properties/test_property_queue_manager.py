"""Property-based tests of the unified queue manager's locking invariants.

A random sequence of protocol-tagged requests (plus confirm / downgrade /
release / abort actions for the transactions involved) is driven through one
queue manager; after every step the granted-lock table must satisfy the
semi-lock compatibility invariants and the per-copy log must stay conflict
serializable.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.ids import CopyId, TransactionId
from repro.common.protocol_names import Protocol
from repro.core.effects import BackoffIssued, GrantIssued, RequestRejected
from repro.core.locks import LockMode
from repro.core.queue_manager import QueueManager
from repro.core.serializability import check_serializable
from repro.storage.log import ExecutionLog

from tests.conftest import make_request

#: Lock-mode pairs that must never be held concurrently by two different
#: transactions on the same copy under the semi-lock protocol.
FORBIDDEN_PAIRS = {
    frozenset({LockMode.WRITE, LockMode.WRITE}),
    frozenset({LockMode.WRITE, LockMode.READ}),
    frozenset({LockMode.READ, LockMode.SEMI_WRITE}),
}


@st.composite
def request_scripts(draw):
    """A script of (protocol, op, transaction seq) request arrivals."""
    length = draw(st.integers(min_value=1, max_value=25))
    script = []
    for _ in range(length):
        protocol = draw(st.sampled_from(list(Protocol)))
        is_write = draw(st.booleans())
        seq = draw(st.integers(min_value=1, max_value=8))
        script.append((protocol, "w" if is_write else "r", seq))
    return script


def drive(script):
    """Run the script through a queue manager with a simple issuer model.

    Each transaction issues at most one request here (later requests from a
    seq already seen are skipped), PA requests are confirmed as soon as their
    proposal arrives, and granted transactions are released a fixed number of
    steps later.  The function returns the manager and its execution log.
    """
    log = ExecutionLog()
    manager = QueueManager(CopyId(0, 0), log)
    seen = {}
    now = 0.0
    pending_release = []

    def check_invariants():
        locks = manager.granted_locks()
        for i, first in enumerate(locks):
            for second in locks[i + 1:]:
                if first.transaction == second.transaction:
                    continue
                assert frozenset({first.mode, second.mode}) not in FORBIDDEN_PAIRS, (
                    f"incompatible locks held together: {first.mode} / {second.mode}"
                )
        assert check_serializable(log).serializable

    for index, (protocol, op, seq) in enumerate(script):
        now += 1.0
        if seq in seen:
            continue
        tid = TransactionId(0, seq)
        seen[seq] = protocol
        request = make_request(
            tid=tid, index=0, protocol=protocol, op=op, timestamp=float(index + 1)
        )
        manager.submit(request, now)
        for effect in manager.drain_effects():
            if isinstance(effect, BackoffIssued):
                # Confirm immediately at the proposed timestamp.
                manager.update_timestamp(tid, effect.new_timestamp, now)
            elif isinstance(effect, RequestRejected):
                seen.pop(seq, None)
        check_invariants()
        # Release the oldest holder every third step to let the queue drain.
        if index % 3 == 2:
            holders = {lock.transaction for lock in manager.granted_locks()}
            if holders:
                victim = sorted(holders)[0]
                protocol_of_victim = seen.get(victim.seq)
                if protocol_of_victim is Protocol.TIMESTAMP_ORDERING:
                    manager.downgrade(victim, now)
                manager.release(victim, now)
                manager.drain_effects()
        check_invariants()

    # Drain everything at the end.
    for seq, protocol in sorted(seen.items()):
        tid = TransactionId(0, seq)
        if manager.queue_entries() and any(
            entry.transaction == tid for entry in manager.queue_entries()
        ):
            manager.release(tid, now + 100.0)
            manager.drain_effects()
            check_invariants()
    return manager, log


class TestQueueManagerInvariants:
    @given(request_scripts())
    @settings(max_examples=100, deadline=None)
    def test_semi_lock_compatibility_and_serializability(self, script):
        drive(script)

    @given(request_scripts())
    @settings(max_examples=50, deadline=None)
    def test_grant_effects_reference_queued_requests(self, script):
        log = ExecutionLog()
        manager = QueueManager(CopyId(0, 0), log)
        for index, (protocol, op, seq) in enumerate(script):
            request = make_request(
                tid=TransactionId(0, index + 1), index=0, protocol=protocol, op=op,
                timestamp=float(index + 1),
            )
            manager.submit(request, float(index + 1))
            for effect in manager.drain_effects():
                if isinstance(effect, GrantIssued):
                    assert manager.queue_entries()
                    granted_ids = {lock.request_id for lock in manager.granted_locks()}
                    assert effect.request.request_id in granted_ids
