"""Whole-system property tests: every randomly configured run must commit all
transactions, stay conflict serializable, and honour the per-protocol
liveness guarantees (PA never restarts, T/O and PA never deadlock)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import ProtocolMix, SystemConfig, WorkloadConfig
from repro.common.protocol_names import Protocol
from repro.system.runner import run_simulation


@st.composite
def run_configurations(draw):
    num_sites = draw(st.integers(min_value=1, max_value=4))
    num_items = draw(st.integers(min_value=4, max_value=24))
    replication = draw(st.integers(min_value=1, max_value=min(2, num_sites)))
    system = SystemConfig(
        num_sites=num_sites,
        num_items=num_items,
        replication_factor=replication,
        io_time=draw(st.sampled_from([0.0, 0.002])),
        deadlock_detection_period=draw(st.sampled_from([0.05, 0.2])),
        restart_delay=0.01,
        seed=draw(st.integers(min_value=0, max_value=1000)),
    )
    max_size = draw(st.integers(min_value=1, max_value=min(5, num_items)))
    workload = WorkloadConfig(
        arrival_rate=draw(st.sampled_from([5.0, 20.0, 60.0])),
        num_transactions=draw(st.integers(min_value=5, max_value=40)),
        min_size=1,
        max_size=max_size,
        read_fraction=draw(st.sampled_from([0.0, 0.5, 1.0])),
        compute_time=0.002,
        hotspot_probability=draw(st.sampled_from([0.0, 0.5])),
        hotspot_fraction=0.25,
        seed=draw(st.integers(min_value=0, max_value=1000)),
    )
    return system, workload


class TestEndToEndProperties:
    @given(run_configurations(), st.sampled_from(["2PL", "T/O", "PA", None]))
    @settings(max_examples=25, deadline=None)
    def test_all_transactions_commit_serializably(self, configuration, protocol):
        system, workload = configuration
        result = run_simulation(system, workload, protocol=protocol)
        assert result.committed == workload.num_transactions
        assert result.serializable

    @given(run_configurations())
    @settings(max_examples=10, deadline=None)
    def test_pa_is_free_of_restarts_and_deadlocks(self, configuration):
        system, workload = configuration
        workload = workload.with_overrides(
            protocol_mix=ProtocolMix.pure(Protocol.PRECEDENCE_AGREEMENT)
        )
        result = run_simulation(system, workload)
        stats = result.metrics.protocol_statistics(Protocol.PRECEDENCE_AGREEMENT)
        assert stats.restarts == 0
        assert stats.deadlock_aborts == 0
        assert result.deadlocks_found == 0

    @given(run_configurations())
    @settings(max_examples=10, deadline=None)
    def test_deadlock_victims_are_2pl_transactions(self, configuration):
        system, workload = configuration
        result = run_simulation(system, workload)
        for victim in result.deadlock_victims:
            assert result.protocol_of[victim].is_two_phase_locking
