"""Property-based tests for the unified precedence space."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.ids import TransactionId
from repro.common.protocol_names import Protocol
from repro.core.precedence import Precedence


protocols = st.sampled_from(list(Protocol))


@st.composite
def precedences(draw):
    return Precedence(
        timestamp=draw(st.floats(min_value=0.0, max_value=1e6, allow_nan=False)),
        protocol=draw(protocols),
        site=draw(st.integers(min_value=0, max_value=15)),
        transaction=TransactionId(
            draw(st.integers(min_value=0, max_value=15)),
            draw(st.integers(min_value=1, max_value=10_000)),
        ),
        arrival_seq=draw(st.integers(min_value=0, max_value=10_000)),
    )


class TestTotalOrderProperties:
    @given(precedences(), precedences())
    def test_comparison_is_antisymmetric(self, a, b):
        if a.sort_key() != b.sort_key():
            assert (a < b) != (b < a)

    @given(precedences(), precedences(), precedences())
    @settings(max_examples=200)
    def test_comparison_is_transitive(self, a, b, c):
        if a < b and b < c:
            assert a < c

    @given(precedences())
    def test_reflexive_less_equal(self, a):
        assert a <= a and a >= a

    @given(st.lists(precedences(), min_size=2, max_size=20))
    def test_sorting_is_stable_under_resorting(self, items):
        once = sorted(items, key=lambda p: p.sort_key())
        twice = sorted(once, key=lambda p: p.sort_key())
        assert [p.sort_key() for p in once] == [p.sort_key() for p in twice]

    @given(precedences(), st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    def test_raising_the_timestamp_never_moves_a_request_earlier(self, precedence, delta):
        moved = precedence.with_timestamp(precedence.timestamp + delta)
        assert not (moved < precedence)

    @given(precedences(), precedences())
    def test_smaller_timestamp_always_sorts_first(self, a, b):
        if a.timestamp < b.timestamp:
            assert a < b

    @given(precedences())
    def test_2pl_sorts_after_non_2pl_with_equal_timestamp(self, precedence):
        non_2pl = Precedence(
            timestamp=precedence.timestamp,
            protocol=Protocol.TIMESTAMP_ORDERING,
            site=precedence.site,
            transaction=precedence.transaction,
            arrival_seq=precedence.arrival_seq,
        )
        two_pl = Precedence(
            timestamp=precedence.timestamp,
            protocol=Protocol.TWO_PHASE_LOCKING,
            site=precedence.site,
            transaction=precedence.transaction,
            arrival_seq=precedence.arrival_seq,
        )
        assert non_2pl < two_pl
