"""Property-based tests for the serializability oracle.

The oracle is itself used as the referee for the whole reproduction, so it is
checked here against an independent implementation (networkx) and against
executions that are serializable by construction.
"""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.ids import CopyId, TransactionId
from repro.common.operations import OperationType
from repro.common.protocol_names import Protocol
from repro.core.serializability import ConflictGraph, check_serializable
from repro.storage.log import ExecutionLog


@st.composite
def random_executions(draw):
    """A random multi-copy execution: arbitrary interleaving of operations."""
    num_transactions = draw(st.integers(min_value=1, max_value=6))
    num_copies = draw(st.integers(min_value=1, max_value=4))
    operations = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=num_transactions - 1),
                st.integers(min_value=0, max_value=num_copies - 1),
                st.booleans(),
            ),
            min_size=0,
            max_size=30,
        )
    )
    log = ExecutionLog()
    for time, (transaction, copy, is_write) in enumerate(operations):
        log.record(
            CopyId(copy, 0),
            TransactionId(0, transaction + 1),
            OperationType.WRITE if is_write else OperationType.READ,
            Protocol.TWO_PHASE_LOCKING,
            float(time),
        )
    return log


@st.composite
def serial_executions(draw):
    """An execution in which transactions run one after another (never interleaved)."""
    num_transactions = draw(st.integers(min_value=1, max_value=6))
    num_copies = draw(st.integers(min_value=1, max_value=4))
    log = ExecutionLog()
    time = 0.0
    order = draw(st.permutations(list(range(num_transactions))))
    for transaction in order:
        ops = draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=num_copies - 1), st.booleans()
                ),
                min_size=1,
                max_size=5,
            )
        )
        for copy, is_write in ops:
            time += 1.0
            log.record(
                CopyId(copy, 0),
                TransactionId(0, transaction + 1),
                OperationType.WRITE if is_write else OperationType.READ,
                Protocol.TWO_PHASE_LOCKING,
                time,
            )
    return log


class TestOracleProperties:
    @given(serial_executions())
    @settings(max_examples=100)
    def test_serial_executions_are_always_serializable(self, log):
        report = check_serializable(log)
        assert report.serializable

    @given(random_executions())
    @settings(max_examples=150)
    def test_oracle_agrees_with_networkx(self, log):
        graph = ConflictGraph.from_execution_log(log)
        reference = nx.DiGraph()
        reference.add_nodes_from(graph.nodes())
        for node in graph.nodes():
            for successor in graph.successors(node):
                reference.add_edge(node, successor)
        assert check_serializable(log).serializable == nx.is_directed_acyclic_graph(reference)

    @given(random_executions())
    @settings(max_examples=100)
    def test_witness_order_respects_every_conflict_edge(self, log):
        report = check_serializable(log)
        if not report.serializable:
            return
        graph = ConflictGraph.from_execution_log(log)
        position = {tid: index for index, tid in enumerate(report.serialization_order)}
        for source in graph.nodes():
            for target in graph.successors(source):
                assert position[source] < position[target]

    @given(random_executions())
    @settings(max_examples=100)
    def test_reported_cycle_is_a_real_cycle(self, log):
        report = check_serializable(log)
        if report.serializable:
            return
        graph = ConflictGraph.from_execution_log(log)
        cycle = list(report.cycle)
        for index, node in enumerate(cycle):
            successor = cycle[(index + 1) % len(cycle)]
            assert graph.has_edge(node, successor)

    @given(random_executions())
    @settings(max_examples=100)
    def test_single_transaction_is_always_serializable(self, log):
        if len(log.transactions()) <= 1:
            assert check_serializable(log).serializable
