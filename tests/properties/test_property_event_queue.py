"""Property tests for the counting :class:`EventQueue`.

``len``/``bool`` are maintained by counters (push / pop / cancel) and the heap
periodically compacts cancelled debris.  These tests compare the queue under
random push / cancel / pop / peek / clear sequences against a plain
filtered-list model, including the awkward cases: double cancellation,
cancelling an event that was already popped, and cancel storms that trigger
compaction.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SimulationError
from repro.sim.events import EventQueue


@st.composite
def event_scripts(draw):
    return draw(
        st.lists(
            st.tuples(
                st.sampled_from(["push", "cancel", "pop", "peek", "clear"]),
                st.floats(min_value=0.0, max_value=100.0),  # event time
                st.integers(min_value=0, max_value=3),      # priority
                st.integers(min_value=0, max_value=200),    # handle picker
            ),
            min_size=1,
            max_size=80,
        )
    )


class TestEventQueueMatchesFilteredListModel:
    @given(event_scripts())
    @settings(max_examples=200, deadline=None)
    def test_random_operations(self, script):
        queue = EventQueue()
        handles = []   # every event ever pushed, popped or not
        live = []      # events currently in the queue and not cancelled
        for op, time, priority, pick in script:
            if op == "push":
                event = queue.push(time, lambda: None, priority=priority)
                handles.append(event)
                live.append(event)
            elif op == "cancel" and handles:
                event = handles[pick % len(handles)]
                # Cancelling twice, or cancelling an already-popped event,
                # must be a harmless no-op for the counters.
                event.cancel()
                event.cancel()
                if event in live:
                    live.remove(event)
            elif op == "pop":
                if live:
                    expected = min(live, key=lambda e: (e.time, e.priority, e.seq))
                    popped = queue.pop()
                    assert popped is expected
                    live.remove(popped)
                else:
                    try:
                        queue.pop()
                        raise AssertionError("pop on an empty queue must raise")
                    except SimulationError:
                        pass
            elif op == "peek":
                expected = min((e.time for e in live), default=None)
                assert queue.peek_time() == expected
            elif op == "clear":
                queue.clear()
                live = []
            assert len(queue) == len(live)
            assert bool(queue) == bool(live)

    @given(st.integers(min_value=65, max_value=300))
    @settings(max_examples=25, deadline=None)
    def test_cancel_storm_compacts_without_losing_events(self, count):
        queue = EventQueue()
        events = [queue.push(float(i), lambda: None) for i in range(count)]
        # Cancel everything except every fifth event: compaction triggers as
        # soon as cancelled debris outnumbers live events.
        survivors = []
        for index, event in enumerate(events):
            if index % 5 == 0:
                survivors.append(event)
            else:
                event.cancel()
        assert len(queue) == len(survivors)
        # Debris stays bounded: either the heap is majority-live, or it has
        # shrunk below the compaction threshold where debris is cheap anyway.
        from repro.sim.events import _COMPACT_MIN_SIZE

        assert (
            queue._cancelled * 2 <= len(queue._heap)
            or len(queue._heap) < _COMPACT_MIN_SIZE
        )
        popped = []
        while queue:
            popped.append(queue.pop())
        assert popped == survivors
