"""Differential harness: the incremental checker against the batch oracle.

The streaming audit pipeline replaces the batch serializability oracle in
``audit="streaming"`` runs, so its verdicts must be provably interchangeable.
This module replays the *same* event stream — operations, aborted-attempt
withdrawals (delivered or dropped), commit points, per-copy quiesces — into
both an :class:`~repro.core.streaming.IncrementalSerializabilityChecker` and
a plain :class:`~repro.storage.log.ExecutionLog` audited by
:func:`~repro.core.serializability.check_serializable`, and asserts:

* the serializable/non-serializable **verdict** is identical;
* ``transactions_checked`` is identical;
* a reported **cycle** consists of real edges of the batch conflict graph;
* the streaming **witness** is a valid topological order of the batch graph
  over exactly the batch graph's nodes (the incremental witness is the
  retirement order, a *different* valid order than the batch oracle's
  lexicographically-smallest one — so validity, not identity, is asserted);
* ``conflict_edges`` never exceeds the batch count (the checker counts the
  retirement-pruned graph, a documented lower bound).

The same fuzzed streams double as the retirement-safety property: once a
transaction retires it must never reappear in the live graph, gain an edge,
or accept another log entry.

End-to-end, every registered scenario — including the crash/fault scenarios
whose committed-attempt filtering is the subtlest path — is run at small
scale under both audit modes and the summaries compared field by field.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.replications import summarize_run
from repro.common.errors import SimulationError
from repro.common.ids import CopyId, TransactionId
from repro.common.operations import OperationType
from repro.common.protocol_names import Protocol
from repro.core.serializability import (
    ConflictGraph,
    check_serializable,
    committed_view,
)
from repro.core.streaming import IncrementalSerializabilityChecker
from repro.storage.log import ExecutionLog
from repro.system.runner import run_simulation
from repro.workload.scenarios import all_scenarios


# --------------------------------------------------------------------------- #
# Scripted event streams
# --------------------------------------------------------------------------- #


@st.composite
def audit_scripts(draw):
    """A random interleaved audit event stream with commits, aborts and drops.

    Each transaction runs one or two attempts of random read/write operations
    over a small copy set.  A superseded attempt's abort withdrawal is either
    *delivered* mid-stream (the normal path) or *dropped* (the crashed-site
    path — the commit point must then withdraw the stale entries itself).
    Committing transactions seal via a commit point followed by per-copy
    quiesce notifications; the rest stay open until ``finalize``.
    """
    num_transactions = draw(st.integers(min_value=1, max_value=5))
    num_copies = draw(st.integers(min_value=1, max_value=3))
    scripts = []
    for transaction in range(num_transactions):
        attempts = draw(st.integers(min_value=1, max_value=2))
        events = []
        for attempt in range(attempts):
            operations = draw(
                st.lists(
                    st.tuples(
                        st.integers(min_value=0, max_value=num_copies - 1),
                        st.booleans(),
                    ),
                    min_size=0,
                    max_size=4,
                )
            )
            for copy, is_write in operations:
                events.append(("op", transaction, attempt, copy, is_write))
            if attempt < attempts - 1 and draw(st.booleans()):
                events.append(("abort", transaction, attempt))
        if draw(st.booleans()):
            events.append(("commit", transaction, attempts - 1))
        scripts.append(events)
    # Interleave the per-transaction scripts in a random order that preserves
    # each transaction's own event sequence.
    tags = [t for t, events in enumerate(scripts) for _ in events]
    tags = draw(st.permutations(tags))
    queues = [list(reversed(events)) for events in scripts]
    return num_copies, [queues[tag].pop() for tag in tags]


def replay(stream, *, checker, check_each=None):
    """Feed ``stream`` through a log with ``checker`` attached as observer.

    Returns the (unbounded) log holding the full surviving history and the
    committed-attempts map the commit events produced — exactly what the
    batch oracle needs for its committed view.
    """
    log = ExecutionLog()
    log.attach_observer(checker)
    committed = {}
    touched = {}
    time = 0.0
    for event in stream:
        kind = event[0]
        if kind == "op":
            _, transaction, attempt, copy, is_write = event
            time += 1.0
            log.record(
                CopyId(copy, 0),
                TransactionId(0, transaction + 1),
                OperationType.WRITE if is_write else OperationType.READ,
                Protocol.TWO_PHASE_LOCKING,
                time,
                attempt,
            )
            touched.setdefault((transaction, attempt), set()).add(CopyId(copy, 0))
        elif kind == "abort":
            _, transaction, attempt = event
            tid = TransactionId(0, transaction + 1)
            for copy in touched.pop((transaction, attempt), set()):
                log.remove_transaction(copy, tid, attempt)
        else:
            _, transaction, attempt = event
            tid = TransactionId(0, transaction + 1)
            copies = tuple(sorted(touched.get((transaction, attempt), set())))
            committed[tid] = attempt
            checker.note_commit(tid, attempt, copies)
            for copy in copies:
                log.note_quiesced(copy, tid, attempt)
        if check_each is not None:
            check_each()
    return log, committed


def assert_reports_equivalent(log, committed, streaming_report):
    """The core differential assertion: streaming verdict == batch verdict."""
    batch = check_serializable(log, committed_attempts=committed)
    assert streaming_report.serializable == batch.serializable
    assert streaming_report.transactions_checked == batch.transactions_checked
    # The checker counts the retirement-pruned graph (edges whose source
    # retired before the target's later operations never materialise) — a
    # documented lower bound of the batch count, never an overcount.
    assert streaming_report.conflict_edges <= batch.conflict_edges
    graph = ConflictGraph.from_execution_log(committed_view(log, committed))
    if batch.serializable:
        witness = streaming_report.serialization_order
        assert sorted(witness) == sorted(graph.nodes())
        position = {tid: index for index, tid in enumerate(witness)}
        for source in graph.nodes():
            for target in graph.successors(source):
                assert position[source] < position[target]
    else:
        assert streaming_report.cycle is not None
        cycle = list(streaming_report.cycle)
        for index, node in enumerate(cycle):
            assert graph.has_edge(node, cycle[(index + 1) % len(cycle)])


# --------------------------------------------------------------------------- #
# Property-based differential tests
# --------------------------------------------------------------------------- #


class TestStreamedVerdictMatchesBatch:
    @given(audit_scripts())
    @settings(max_examples=200, deadline=None)
    def test_committed_view_equivalence(self, script):
        """Commits, delivered and dropped aborts: same verdict as batch."""
        _, stream = script
        checker = IncrementalSerializabilityChecker()
        log, committed = replay(stream, checker=checker)
        assert_reports_equivalent(log, committed, checker.finalize(committed))

    @given(audit_scripts())
    @settings(max_examples=100, deadline=None)
    def test_equivalence_without_retirement(self, script):
        """With no commit points nothing retires: pure graph maintenance.

        The stream's commit events are stripped, so the checker holds every
        live entry until ``finalize`` — this isolates the incremental
        edge-maintenance and withdrawal repair from the retirement logic.
        """
        _, stream = script
        stream = [event for event in stream if event[0] != "commit"]
        checker = IncrementalSerializabilityChecker()
        log, committed = replay(stream, checker=checker)
        assert not committed
        # Without a committed view every surviving entry is audited.
        batch = check_serializable(log)
        report = checker.finalize()
        assert report.serializable == batch.serializable
        assert report.transactions_checked == batch.transactions_checked
        assert report.conflict_edges == batch.conflict_edges
        graph = ConflictGraph.from_execution_log(log)
        if batch.serializable:
            position = {
                tid: index for index, tid in enumerate(report.serialization_order)
            }
            assert sorted(position) == sorted(graph.nodes())
            for source in graph.nodes():
                for target in graph.successors(source):
                    assert position[source] < position[target]

    @given(audit_scripts())
    @settings(max_examples=100, deadline=None)
    def test_order_digest_folds_the_witness(self, script):
        """``retain_order=False`` reaches the same verdict with no witness list."""
        _, stream = script
        retaining = IncrementalSerializabilityChecker()
        compact = IncrementalSerializabilityChecker(retain_order=False)
        log, committed = replay(stream, checker=retaining)
        compact_log, compact_committed = replay(stream, checker=compact)
        assert compact_committed == committed
        full = retaining.finalize(committed)
        folded = compact.finalize(compact_committed)
        assert folded.serializable == full.serializable
        assert folded.transactions_checked == full.transactions_checked
        assert compact.order_digest == retaining.order_digest


class TestRetirementSafety:
    @given(audit_scripts())
    @settings(max_examples=150, deadline=None)
    def test_retired_transactions_never_regain_live_state(self, script):
        """After every event: no retired transaction holds entries or edges."""
        _, stream = script
        retired = []
        checker = IncrementalSerializabilityChecker(on_retire=retired.append)

        def check_each():
            for tid in retired:
                assert checker.is_retired(tid)
                assert tid not in checker._entry_total
                assert tid not in checker._preds
                assert tid not in checker._succs
            for earlier, later in checker._support:
                assert earlier not in retired
                assert later not in retired

        log, committed = replay(stream, checker=checker, check_each=check_each)
        report = checker.finalize(committed)
        if report.serializable:
            # Every retirement was banked into the witness, in order.
            assert report.serialization_order[: len(retired)] == retired

    def test_recording_after_retirement_raises(self):
        log = ExecutionLog()
        checker = IncrementalSerializabilityChecker()
        log.attach_observer(checker)
        tid = TransactionId(0, 1)
        copy = CopyId(0, 0)
        log.record(copy, tid, OperationType.WRITE, Protocol.TWO_PHASE_LOCKING, 1.0)
        checker.note_commit(tid, 0, (copy,))
        log.note_quiesced(copy, tid, 0)
        assert checker.is_retired(tid)
        with pytest.raises(SimulationError):
            log.record(copy, tid, OperationType.READ, Protocol.TWO_PHASE_LOCKING, 2.0)

    def test_late_abort_of_a_retired_transaction_is_ignored(self):
        log = ExecutionLog()
        checker = IncrementalSerializabilityChecker()
        log.attach_observer(checker)
        tid = TransactionId(0, 1)
        copy = CopyId(0, 0)
        log.record(copy, tid, OperationType.WRITE, Protocol.TWO_PHASE_LOCKING, 1.0, 1)
        checker.note_commit(tid, 1, (copy,))
        log.note_quiesced(copy, tid, None)
        assert checker.is_retired(tid)
        # A stale attempt's abort arriving after retirement must be a no-op.
        checker.entries_withdrawn(copy, tid, 0)
        assert checker.finalize({tid: 1}).serializable

    def test_conflicting_commit_points_raise(self):
        checker = IncrementalSerializabilityChecker()
        tid = TransactionId(0, 1)
        copy = CopyId(0, 0)
        checker.note_commit(tid, 0, (copy,))
        checker.note_commit(tid, 0, (copy,))  # duplicate decision: idempotent
        with pytest.raises(SimulationError):
            checker.note_commit(tid, 1, (copy,))

    def test_commit_point_after_empty_retirement_raises(self):
        """A zero-entry commit retires instantly yet stays protocol-visible."""
        checker = IncrementalSerializabilityChecker()
        tid = TransactionId(0, 1)
        checker.note_commit(tid, 0, ())  # no copies: seals and retires at once
        assert checker.is_retired(tid)
        with pytest.raises(SimulationError):
            checker.note_commit(tid, 1, ())

    def test_finalize_is_one_shot(self):
        checker = IncrementalSerializabilityChecker()
        checker.finalize()
        with pytest.raises(SimulationError):
            checker.finalize()


class TestBankedEdgeResolution:
    """Edges banked at a source's retirement respect the target's commit.

    Regression for a hypothesis-found overcount: a source retired while its
    only out-edge support was a *stale, not-yet-committed* attempt of the
    target (the dropped-abort path).  The banked edge must dissolve at the
    target's commit point — the committed view never contains those entries
    — keeping ``conflict_edges`` a true lower bound of the batch count.
    """

    def test_stale_attempt_support_dissolves_at_the_commit_point(self):
        stream = [
            ("op", 0, 0, 0, False),  # T1 attempt 0 reads copy 0
            ("op", 1, 0, 0, True),  # T2 attempt 0 writes copy 0 (stale later)
            ("commit", 0, 0),  # T1 seals and retires; edge T1 -> T2 banked
            ("op", 1, 1, 0, False),  # T2 attempt 1 reads copy 0
            ("commit", 1, 1),  # attempt 0 withdrawn: the banked edge is void
        ]
        checker = IncrementalSerializabilityChecker()
        log, committed = replay(stream, checker=checker)
        report = checker.finalize(committed)
        assert report.serializable
        assert report.conflict_edges == 0
        assert_reports_equivalent(log, committed, report)

    def test_committed_attempt_support_survives_the_commit_point(self):
        stream = [
            ("op", 0, 0, 0, False),  # T1 attempt 0 reads copy 0
            ("op", 1, 1, 0, True),  # T2 writes with its eventual attempt
            ("commit", 0, 0),  # T1 retires; edge banked on attempt 1
            ("commit", 1, 1),  # attempt 1 committed: the edge is real
        ]
        checker = IncrementalSerializabilityChecker()
        log, committed = replay(stream, checker=checker)
        report = checker.finalize(committed)
        assert report.serializable
        assert report.conflict_edges == 1
        assert_reports_equivalent(log, committed, report)


# --------------------------------------------------------------------------- #
# End-to-end: full simulation runs under both audit modes
# --------------------------------------------------------------------------- #


def _streaming_equals_batch(scenario):
    batch = run_simulation(
        scenario.system.with_overrides(audit="batch"),
        scenario.workload,
        protocol=scenario.protocol,
        dynamic_selection=scenario.dynamic_selection,
        selection_mode=scenario.selection_mode,
    )
    streaming = run_simulation(
        scenario.system.with_overrides(audit="streaming"),
        scenario.workload,
        protocol=scenario.protocol,
        dynamic_selection=scenario.dynamic_selection,
        selection_mode=scenario.selection_mode,
    )
    assert batch.audit == "batch" and streaming.audit == "streaming"
    assert streaming.serializability.serializable
    assert batch.serializability.serializable
    assert (
        streaming.serializability.transactions_checked
        == batch.serializability.transactions_checked
    )
    assert (
        streaming.serializability.conflict_edges
        <= batch.serializability.conflict_edges
    )
    # Same transactions audited; the streaming witness is the retirement
    # order, a different-but-valid serialization (validity is proven by the
    # property tests above, set-equality pins the audited population here).
    assert sorted(streaming.serializability.serialization_order) == sorted(
        batch.serializability.serialization_order
    )
    assert streaming.replica_report == batch.replica_report
    assert streaming.audit_stats["retired"] > 0
    assert streaming.audit_stats["live_entries"] == 0
    assert (
        streaming.audit_stats["peak_live_entries"]
        < streaming.audit_stats["entries_seen"]
    )
    batch_summary = summarize_run(batch)
    streaming_summary = summarize_run(streaming)
    assert batch_summary.pop("audit") == "batch"
    assert streaming_summary.pop("audit") == "streaming"
    # The one structural difference: streaming folds outcomes away, so the
    # raw commit-time list is empty — everything derived from it is not.
    commit_times = batch_summary.pop("commit_times")
    assert streaming_summary.pop("commit_times") == []
    assert len(commit_times) == batch_summary["committed"]
    assert streaming_summary == batch_summary


@pytest.mark.parametrize(
    "scenario", all_scenarios(), ids=lambda scenario: scenario.name
)
def test_every_registered_scenario_streams_identically(scenario):
    """Both audit modes agree on every registered scenario, faults included.

    The crash scenarios exercise the committed-attempts filtering (dropped
    abort messages strand stale entries the streaming commit point must
    withdraw); the two-phase scenarios exercise quiesce-before-commit
    orderings from the cooperative termination protocol.
    """
    _streaming_equals_batch(scenario.configured(transactions=40))


def test_dynamic_selection_streams_identically():
    """The STL selector's runs audit identically under both modes."""
    base = all_scenarios()[0].configured(transactions=40)
    _streaming_equals_batch(
        dataclasses.replace(base, dynamic_selection=True, selection_mode="adaptive")
    )
