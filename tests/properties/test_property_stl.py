"""Property-based tests of the STL model and the PA back-off arithmetic."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.common.ids import TransactionId
from repro.common.protocol_names import Protocol
from repro.common.transactions import TransactionSpec
from repro.core.protocols.precedence_agreement import PrecedenceAgreementPolicy
from repro.selection.parameters import ProtocolCostParameters, SystemLoadParameters
from repro.selection.stl import ThroughputLossModel


@st.composite
def loads(draw):
    throughput = draw(st.floats(min_value=0.1, max_value=500.0))
    read_fraction = draw(st.floats(min_value=0.0, max_value=1.0))
    return SystemLoadParameters(
        system_throughput=throughput,
        read_throughput=draw(st.floats(min_value=0.0, max_value=20.0)),
        write_throughput=draw(st.floats(min_value=0.0, max_value=20.0)),
        read_fraction=read_fraction,
        requests_per_transaction=draw(st.floats(min_value=1.0, max_value=16.0)),
    )


positive_times = st.floats(min_value=0.0, max_value=5.0)
losses = st.floats(min_value=0.0, max_value=600.0)


class TestSTLPrimeProperties:
    @given(loads(), losses, positive_times)
    @settings(max_examples=150, deadline=None)
    def test_loss_is_non_negative_and_bounded_by_capacity(self, load, loss, duration):
        model = ThroughputLossModel(load, time_steps=16)
        value = model.stl_prime(loss, duration)
        assert value >= 0.0
        assert value <= load.system_throughput * duration + 1e-6

    @given(loads(), losses, positive_times, positive_times)
    @settings(max_examples=100, deadline=None)
    def test_loss_is_monotone_in_duration(self, load, loss, first, second):
        model = ThroughputLossModel(load, time_steps=16)
        short, long = sorted((first, second))
        assert model.stl_prime(loss, short) <= model.stl_prime(loss, long) + 1e-9

    @given(loads(), losses, losses, positive_times)
    @settings(max_examples=100, deadline=None)
    def test_loss_is_monotone_in_initial_loss(self, load, a, b, duration):
        model = ThroughputLossModel(load, time_steps=16)
        small, large = sorted((a, b))
        assert model.stl_prime(small, duration) <= model.stl_prime(large, duration) + 1e-9

    @given(loads(), positive_times)
    @settings(max_examples=100, deadline=None)
    def test_zero_loss_zero_result_when_nothing_escalates(self, load, duration):
        model = ThroughputLossModel(load, time_steps=16)
        assert model.stl_prime(0.0, duration) >= 0.0

    @given(loads(), st.integers(min_value=0, max_value=8), st.integers(min_value=0, max_value=8))
    @settings(max_examples=100, deadline=None)
    def test_transaction_loss_is_additive_and_non_negative(self, load, reads, writes):
        model = ThroughputLossModel(load)
        value = model.transaction_loss(reads, writes)
        assert value >= 0.0
        assert value == (
            model.transaction_loss(reads, 0) + model.transaction_loss(0, writes)
        )


class TestProtocolFormulaProperties:
    @given(
        loads(),
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=5),
        st.floats(min_value=0.0, max_value=0.9),
    )
    @settings(max_examples=100, deadline=None)
    def test_higher_failure_probability_never_reduces_cost(self, load, reads, writes, probability):
        assume(reads + writes > 0)
        model = ThroughputLossModel(load, time_steps=16)
        spec = TransactionSpec(
            tid=TransactionId(0, 1),
            read_items=tuple(range(reads)),
            write_items=tuple(range(100, 100 + writes)),
        )
        cheap = ProtocolCostParameters(
            protocol=Protocol.TIMESTAMP_ORDERING, lock_time=0.1, lock_time_aborted=0.2
        )
        pricey = ProtocolCostParameters(
            protocol=Protocol.TIMESTAMP_ORDERING,
            lock_time=0.1,
            lock_time_aborted=0.2,
            read_failure_probability=probability,
            write_failure_probability=probability,
        )
        assert model.stl_timestamp_ordering(spec, cheap) <= (
            model.stl_timestamp_ordering(spec, pricey) + 1e-9
        )


class TestBackoffArithmetic:
    @given(
        st.floats(min_value=0.0, max_value=1e5),
        st.floats(min_value=1e-3, max_value=1e3),
        st.floats(min_value=0.0, max_value=1e5),
    )
    @settings(max_examples=300)
    def test_backoff_exceeds_threshold_and_is_a_whole_number_of_steps(
        self, timestamp, interval, threshold
    ):
        result = PrecedenceAgreementPolicy.backoff_timestamp(timestamp, interval, threshold)
        assert result > threshold
        assert result > timestamp
        steps = (result - timestamp) / interval
        assert steps == round(steps) or math.isclose(steps, round(steps), rel_tol=1e-6)
        assert round(steps) >= 1
