"""Property tests for the indexed :class:`DataQueue`.

The queue keeps hash indices (request id, transaction), a parallel filed-key
list for binary search, and a cached first-ungranted cursor.  These tests
drive it with random operation sequences and, after every step, compare every
observable against a naive list model that re-implements the original
unindexed behaviour (append + stable sort, linear scans).  Both containers
hold the *same* entry objects, so mutations (grants, precedence changes) are
seen by both and only the bookkeeping differs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.ids import TransactionId
from repro.common.protocol_names import Protocol
from repro.core.data_queue import DataQueue, QueuedRequest
from repro.core.precedence import Precedence

from tests.conftest import make_request


class NaiveDataQueue:
    """The original list-only implementation, kept as the reference model."""

    def __init__(self):
        self.entries = []

    def insert(self, entry):
        self.entries.append(entry)
        self.entries.sort(key=lambda e: e.precedence.sort_key())

    def find(self, request_id):
        for entry in self.entries:
            if entry.request_id == request_id:
                return entry
        return None

    def entries_of(self, transaction):
        return tuple(e for e in self.entries if e.transaction == transaction)

    def remove(self, request_id):
        entry = self.find(request_id)
        self.entries.remove(entry)
        return entry

    def remove_transaction(self, transaction):
        removed = self.entries_of(transaction)
        self.entries = [e for e in self.entries if e.transaction != transaction]
        return removed

    def resort(self):
        self.entries.sort(key=lambda e: e.precedence.sort_key())

    def head(self):
        for entry in self.entries:
            if not entry.granted:
                return entry
        return None

    def ungranted(self):
        return tuple(e for e in self.entries if not e.granted)

    def granted(self):
        return tuple(e for e in self.entries if e.granted)

    def entries_before(self, entry):
        result = []
        for candidate in self.entries:
            if candidate is entry:
                break
            result.append(candidate)
        return tuple(result)


PROTOCOLS = (
    Protocol.TWO_PHASE_LOCKING,
    Protocol.TIMESTAMP_ORDERING,
    Protocol.PRECEDENCE_AGREEMENT,
)


@st.composite
def operation_sequences(draw):
    """A list of (op, args) tuples driving both queue implementations."""
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(
                    [
                        "insert",
                        "remove",
                        "remove_transaction",
                        "grant_head",
                        "retime_and_resort",
                        "find_missing",
                    ]
                ),
                st.integers(min_value=0, max_value=5),    # transaction picker
                st.floats(min_value=0.0, max_value=8.0),  # timestamp
                st.integers(min_value=0, max_value=2),    # protocol picker
            ),
            min_size=1,
            max_size=60,
        )
    )
    return ops


def check_agreement(queue: DataQueue, model: NaiveDataQueue):
    assert list(queue) == model.entries
    assert queue.entries() == tuple(model.entries)
    assert len(queue) == len(model.entries)
    assert queue.head() is model.head()
    assert queue.ungranted() == model.ungranted()
    assert queue.granted() == model.granted()
    for entry in model.entries:
        assert queue.find(entry.request_id) is entry
        assert queue.entries_before(entry) == model.entries_before(entry)
    for txn_seq in range(1, 7):
        transaction = TransactionId(0, txn_seq)
        assert queue.entries_of(transaction) == model.entries_of(transaction)


class TestDataQueueMatchesNaiveModel:
    @given(operation_sequences())
    @settings(max_examples=200, deadline=None)
    def test_random_operations(self, ops):
        queue = DataQueue()
        model = NaiveDataQueue()
        next_index = 0
        for op, txn_pick, timestamp, proto_pick in ops:
            transaction = TransactionId(0, txn_pick + 1)
            if op == "insert":
                protocol = PROTOCOLS[proto_pick]
                request = make_request(
                    tid=transaction,
                    index=next_index,
                    protocol=protocol,
                    timestamp=timestamp,
                    item=0,
                )
                next_index += 1
                entry = QueuedRequest(
                    request=request,
                    precedence=Precedence(
                        timestamp=timestamp,
                        protocol=protocol,
                        site=0,
                        transaction=transaction,
                        arrival_seq=next_index,
                    ),
                )
                queue.insert(entry)
                model.insert(entry)
            elif op == "remove":
                if model.entries:
                    victim = model.entries[txn_pick % len(model.entries)]
                    removed = queue.remove(victim.request_id)
                    assert removed is model.remove(victim.request_id)
            elif op == "remove_transaction":
                removed = queue.remove_transaction(transaction)
                assert removed == model.remove_transaction(transaction)
            elif op == "grant_head":
                head = model.head()
                if head is not None:
                    assert queue.head() is head
                    head.granted = True
            elif op == "retime_and_resort":
                if model.entries:
                    target = model.entries[txn_pick % len(model.entries)]
                    target.precedence = target.precedence.with_timestamp(timestamp)
                    queue.resort()
                    model.resort()
            elif op == "find_missing":
                missing = make_request(tid=transaction, index=10_000 + txn_pick)
                assert queue.find(missing.request_id) is None
            check_agreement(queue, model)
