"""Equivalence of the rewritten serializability oracle with the original.

The seed implementation compared every pair of log entries
(``O(n^2)`` per copy log) and ran Kahn's algorithm on a sorted Python list.
Both were replaced: the conflict edges now come from a single-pass per-item
sweep (:meth:`CopyLog.conflict_edges`) and the ready set is a binary heap.
These tests keep the original all-pairs scan and list-based Kahn as reference
oracles and check, on randomized logs, that the new code produces the exact
same edge set and the exact same serialization witness order.
"""

from typing import Dict, List, Optional, Set, Tuple

from hypothesis import given, settings

from repro.common.ids import TransactionId
from repro.core.serializability import ConflictGraph, check_serializable
from repro.storage.log import CopyLog, ExecutionLog

from tests.properties.test_property_serializability import random_executions


def allpairs_conflict_edges(log: CopyLog) -> Set[Tuple[TransactionId, TransactionId]]:
    """The seed's all-pairs scan, kept as the reference conflict oracle."""
    entries = log.entries()
    edges = set()
    for i, earlier in enumerate(entries):
        for later in entries[i + 1:]:
            if earlier.conflicts_with(later):
                edges.add((earlier.transaction, later.transaction))
    return edges


def reference_conflict_graph(execution: ExecutionLog) -> ConflictGraph:
    graph = ConflictGraph()
    for transaction in execution.transactions():
        graph.add_node(transaction)
    for copy_log in execution.logs():
        for earlier, later in allpairs_conflict_edges(copy_log):
            graph.add_edge(earlier, later)
    return graph


def list_kahn_topological_order(graph: ConflictGraph) -> Optional[List[TransactionId]]:
    """The seed's sorted-list Kahn, kept as the reference witness oracle."""
    in_degree: Dict[TransactionId, int] = {node: 0 for node in graph.nodes()}
    for node in graph.nodes():
        for successor in graph.successors(node):
            in_degree[successor] += 1
    ready = sorted(node for node, degree in in_degree.items() if degree == 0)
    order: List[TransactionId] = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        for successor in graph.successors(node):
            in_degree[successor] -= 1
            if in_degree[successor] == 0:
                ready.append(successor)
        ready.sort()
    if len(order) != len(graph.nodes()):
        return None
    return order


class TestSweepMatchesAllPairsReference:
    @given(random_executions())
    @settings(max_examples=200, deadline=None)
    def test_edge_sets_identical_per_copy(self, execution):
        for copy_log in execution.logs():
            assert set(copy_log.conflict_edges()) == allpairs_conflict_edges(copy_log)

    @given(random_executions())
    @settings(max_examples=150, deadline=None)
    def test_conflict_graphs_identical(self, execution):
        new_graph = ConflictGraph.from_execution_log(execution)
        old_graph = reference_conflict_graph(execution)
        assert new_graph.nodes() == old_graph.nodes()
        for node in new_graph.nodes():
            assert new_graph.successors(node) == old_graph.successors(node)
        assert new_graph.edge_count() == old_graph.edge_count()

    @given(random_executions())
    @settings(max_examples=150, deadline=None)
    def test_witness_order_identical(self, execution):
        report = check_serializable(execution)
        reference = list_kahn_topological_order(reference_conflict_graph(execution))
        if reference is None:
            assert not report.serializable
        else:
            assert report.serializable
            assert report.serialization_order == reference
