"""One-phase commit is bit-identical to the pre-refactor implicit commit.

``golden_one_phase.json`` pins SHA-256 digests of ``summarize_run`` output
(restricted to the pre-refactor key set) computed on the commit *before*
the commit-pipeline refactor.  With the default ``commit="one-phase"``
layer and no faults configured, the refactored life cycle must reproduce
every one of them exactly — same grants, same messages, same metrics, same
windowed series — across protocol mixes, replication, semi-locks and the
dynamic selector.
"""

import hashlib
import json
import pathlib

import pytest

from repro.analysis.replications import SimulationTask, execute_task
from repro.common.config import SystemConfig, WorkloadConfig

GOLDEN = json.loads(
    (pathlib.Path(__file__).parent / "golden_one_phase.json").read_text()
)

CASES = {
    "mixed-default": SimulationTask(
        system=SystemConfig(num_sites=3, num_items=24, seed=5),
        workload=WorkloadConfig(arrival_rate=25.0, num_transactions=120, seed=7),
    ),
    "pure-to-semilocks": SimulationTask(
        system=SystemConfig(num_sites=3, num_items=24, seed=5),
        workload=WorkloadConfig(arrival_rate=25.0, num_transactions=120, seed=7),
        protocol="T/O",
    ),
    "pure-pa": SimulationTask(
        system=SystemConfig(num_sites=3, num_items=24, seed=5),
        workload=WorkloadConfig(arrival_rate=25.0, num_transactions=120, seed=7),
        protocol="PA",
    ),
    "pure-2pl-replicated": SimulationTask(
        system=SystemConfig(num_sites=3, num_items=24, replication_factor=2, seed=5),
        workload=WorkloadConfig(arrival_rate=25.0, num_transactions=120, seed=7),
        protocol="2PL",
    ),
    "dynamic": SimulationTask(
        system=SystemConfig(num_sites=3, num_items=24, seed=5),
        workload=WorkloadConfig(arrival_rate=25.0, num_transactions=100, seed=7),
        dynamic_selection=True,
    ),
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_default_commit_layer_matches_pre_refactor_golden(name):
    summary = execute_task(CASES[name])
    filtered = {key: summary[key] for key in GOLDEN["keys"]}
    blob = json.dumps(filtered, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()
    assert digest == GOLDEN["digests"][name], (
        f"one-phase run {name!r} diverged from the pre-refactor behaviour"
    )


def test_default_summary_reports_the_one_phase_layer():
    summary = execute_task(CASES["mixed-default"])
    assert summary["commit_protocol"] == "one-phase"
    assert summary["lost_writes"] == 0
    assert summary["crashes"] == 0
    assert summary["atomic"] is True
    assert summary["commit_messages"] == {
        "prepare": 0,
        "vote": 0,
        "decide": 0,
        "status_query": 0,
        "status_reply": 0,
    }
