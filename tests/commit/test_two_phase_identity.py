"""The commit-protocol-family refactor left existing configs bit-identical.

``golden_two_phase.json`` pins SHA-256 digests of ``summarize_run`` output
(restricted to the pre-refactor key set) computed on the commit *before*
the coordinator-recovery / presumed-variant refactor.  Two-phase runs —
fault-free, under a deterministic blackout, and under a stochastic crash
storm — plus a one-phase blackout run must reproduce every one of them
exactly: same grants, same messages, same drops, same metrics.  Anything
the refactor adds (watchdogs, peer queries, acks, begin records) must stay
completely off these code paths.
"""

import hashlib
import json
import pathlib

import pytest

from repro.analysis.replications import SimulationTask, execute_task
from repro.common.config import (
    CommitConfig,
    FaultConfig,
    SiteCrash,
    SystemConfig,
    WorkloadConfig,
)

GOLDEN = json.loads(
    (pathlib.Path(__file__).parent / "golden_two_phase.json").read_text()
)

BLACKOUT = FaultConfig(
    crashes=(SiteCrash(site=1, at=1.0, duration=1.5),), request_timeout=1.5
)
STORM = FaultConfig(
    crashes=(SiteCrash(site=0, at=0.9, duration=0.5),),
    crash_rate=0.25,
    mean_repair_time=0.4,
    horizon=10.0,
    request_timeout=1.5,
)


def _system(commit="two-phase", faults=None):
    return SystemConfig(
        num_sites=4,
        num_items=48,
        replication_factor=2,
        restart_delay=0.02,
        seed=11,
        commit=CommitConfig(protocol=commit, prepare_timeout=0.5),
        faults=faults,
    )


def _workload(n=120):
    return WorkloadConfig(arrival_rate=30.0, num_transactions=n, seed=13)


CASES = {
    "two-phase-fault-free": SimulationTask(system=_system(), workload=_workload()),
    "two-phase-blackout": SimulationTask(
        system=_system(faults=BLACKOUT), workload=_workload(150)
    ),
    "two-phase-storm": SimulationTask(
        system=_system(faults=STORM), workload=_workload(150)
    ),
    "one-phase-blackout": SimulationTask(
        system=_system(commit="one-phase", faults=BLACKOUT), workload=_workload(150)
    ),
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_existing_configs_match_pre_refactor_golden(name):
    summary = execute_task(CASES[name])
    filtered = {key: summary[key] for key in GOLDEN["keys"]}
    blob = json.dumps(filtered, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()
    assert digest == GOLDEN["digests"][name], (
        f"run {name!r} diverged from the pre-refactor behaviour"
    )


def test_pre_refactor_paths_never_touch_the_new_machinery():
    summary = execute_task(CASES["two-phase-blackout"])
    assert summary["recovery_messages"] == {"ack": 0, "peer_query": 0, "peer_reply": 0}
    assert summary["coordinator_crashes"] == 0
    assert summary["termination_resolutions"] == 0
    assert summary["log_records_truncated"] == 0
