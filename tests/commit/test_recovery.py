"""Coordinator crash & recovery: protocol family, termination, truncation."""

import dataclasses

import pytest

from repro.common.config import (
    CommitConfig,
    CoordinatorCrash,
    FaultConfig,
    SiteCrash,
    SystemConfig,
    WorkloadConfig,
)
from repro.common.errors import SimulationError
from repro.storage.log import CommitDecision, PreparedRecord, SiteCommitLog
from repro.system.runner import run_simulation
from repro.workload.scenarios import get_scenario

COORDINATOR_BLACKOUT = FaultConfig(
    crashes=(SiteCrash(site=2, at=0.9, duration=0.5),),
    coordinator_crashes=(CoordinatorCrash(site=1, at=1.2, duration=4.8),),
    request_timeout=1.5,
)

VARIANTS = ("two-phase", "presumed-abort", "presumed-commit")


def _system(commit="two-phase", faults=None, *, commit_config=None, **overrides):
    return SystemConfig(
        num_sites=4,
        num_items=48,
        replication_factor=2,
        restart_delay=0.02,
        seed=11,
        commit=commit_config
        if commit_config is not None
        else CommitConfig(protocol=commit, prepare_timeout=0.5),
        faults=faults,
        **overrides,
    )


def _workload(**overrides):
    defaults = dict(arrival_rate=30.0, num_transactions=120, seed=13)
    defaults.update(overrides)
    return WorkloadConfig(**defaults)


class TestCoordinatorCrashRecovery:
    @pytest.mark.parametrize("commit", VARIANTS)
    def test_recovery_walk_redrives_everything(self, commit):
        result = run_simulation(
            _system(commit, faults=COORDINATOR_BLACKOUT), _workload()
        )
        summary = result.summary()
        assert summary["coordinator_crashes"] == 1
        assert summary["coordinator_recoveries"] == 1
        assert summary["redriven_transactions"] > 0
        assert result.committed == result.submitted
        assert result.atomic
        assert result.serializable
        assert result.lost_writes == 0

    @pytest.mark.parametrize("commit", VARIANTS)
    def test_coordinator_crash_runs_are_deterministic(self, commit):
        system = _system(commit, faults=COORDINATOR_BLACKOUT)
        first = run_simulation(system, _workload())
        second = run_simulation(system, _workload())
        assert first.summary() == second.summary()

    def test_arrivals_during_the_blackout_are_deferred_not_lost(self):
        result = run_simulation(
            _system(faults=COORDINATOR_BLACKOUT), _workload()
        )
        # Every transaction routed to the dead coordinator is submitted
        # after its recovery rather than dropped on the floor.
        assert result.submitted == 120
        assert result.committed == 120


class TestRecoveryEraTimeouts:
    """A recovering coordinator must not double-fire suppressed watchdogs."""

    def test_dead_coordinator_fires_no_timeout_restarts(self):
        # Single-site system: every transaction belongs to the coordinator
        # that crashes, so any timeout restart at all is a double-fire (the
        # request timeout of every frozen attempt elapses *inside* the
        # downtime, and the recovery walk already re-drives those attempts).
        faults = FaultConfig(
            coordinator_crashes=(CoordinatorCrash(site=0, at=0.1, duration=2.0),),
            request_timeout=0.5,
        )
        system = SystemConfig(
            num_sites=1,
            num_items=64,
            replication_factor=1,
            restart_delay=0.02,
            seed=11,
            commit=CommitConfig(protocol="two-phase", prepare_timeout=0.5),
            faults=faults,
        )
        result = run_simulation(
            system, _workload(arrival_rate=200.0, num_transactions=20)
        )
        summary = result.summary()
        assert summary["coordinator_crashes"] == 1
        assert summary["redriven_transactions"] >= 5
        assert summary["timeout_restarts"] == 0
        assert result.committed == result.submitted
        assert result.atomic
        assert result.serializable


class TestTerminationProtocol:
    def _blackout_run(self, termination):
        scenario = get_scenario("coordinator-blackout")
        commit = dataclasses.replace(
            scenario.system.commit, termination_protocol=termination
        )
        system = dataclasses.replace(scenario.system, commit=commit)
        workload = dataclasses.replace(scenario.workload, num_transactions=150)
        return run_simulation(system, workload)

    def test_peers_collapse_blocked_in_doubt_time(self):
        blocked = self._blackout_run(termination=False).summary()
        freed = self._blackout_run(termination=True).summary()
        assert freed["termination_resolutions"] > 0
        assert freed["max_in_doubt_time"] < blocked["max_in_doubt_time"]
        assert blocked["termination_resolutions"] == 0

    def test_termination_keeps_the_run_atomic_and_serializable(self):
        result = self._blackout_run(termination=True)
        kinds = result.messages_by_kind
        assert kinds.get("peer_query", 0) > 0
        assert kinds.get("peer_reply", 0) > 0
        assert result.committed == result.submitted
        assert result.atomic
        assert result.serializable


class TestLoggingMatrix:
    """Forced-write and ack accounting of the presumed variants."""

    def _run(self, commit, **workload_overrides):
        return run_simulation(_system(commit), _workload(**workload_overrides))

    def test_presumed_nothing_forces_everything_and_acks_nothing(self):
        result = self._run("two-phase")
        assert result.lazy_log_writes == 0
        assert result.forced_log_writes > 0
        assert "ack" not in result.messages_by_kind

    def test_presumed_abort_trades_forced_writes_for_commit_acks(self):
        nothing = self._run("two-phase")
        presumed = self._run("presumed-abort")
        assert presumed.forced_log_writes < nothing.forced_log_writes
        # Read-only participants prepare with a lazy write instead.
        assert presumed.lazy_log_writes > 0
        assert presumed.messages_by_kind["ack"] > 0
        assert presumed.committed == nothing.committed == 120

    def test_presumed_commit_pays_a_begin_record_but_logs_commits_lazily(self):
        nothing = self._run("two-phase")
        presumed = self._run("presumed-commit")
        # The forced begin record costs one write per round, yet lazy
        # commit-decision and read-only-prepare writes still win overall.
        assert presumed.forced_log_writes < nothing.forced_log_writes
        assert presumed.lazy_log_writes > 0
        # Failure-free, nothing aborts, so presumed-commit acks nothing.
        assert "ack" not in presumed.messages_by_kind

    def test_the_family_agrees_on_the_data(self):
        results = {commit: self._run(commit) for commit in VARIANTS}
        assert len({result.committed for result in results.values()}) == 1
        for result in results.values():
            assert result.atomic
            assert result.serializable


class TestCheckpointTruncation:
    def test_checkpoints_bound_the_log(self):
        commit = CommitConfig(
            protocol="presumed-abort", prepare_timeout=0.5, checkpoint_interval=0.5
        )
        result = run_simulation(_system(commit_config=commit), _workload())
        unbounded = run_simulation(_system("presumed-abort"), _workload())
        assert unbounded.log_records_truncated == 0
        assert result.log_records_truncated > 0
        assert result.peak_log_records < unbounded.peak_log_records
        assert result.summary() != unbounded.summary()
        assert result.committed == unbounded.committed

    def test_truncation_respects_retention_rules(self):
        log = SiteCommitLog(site=0)
        resolved = PreparedRecord(
            transaction="t1",
            attempt=0,
            coordinator="issuer-1",
            requests=(),
            writes={},
            prepared_at=0.1,
            decision=CommitDecision.COMMIT,
            decided_at=0.2,
        )
        blocked = PreparedRecord(
            transaction="t2",
            attempt=0,
            coordinator="issuer-1",
            requests=(),
            writes={},
            prepared_at=0.3,
        )
        log.log_prepared(resolved)
        log.log_prepared(blocked, forced=False)
        # Presumed-nothing decision: neither presumed nor ack-tracked.
        log.log_decision("t1", 0, CommitDecision.COMMIT, 0.2)
        # Presumed decision: collectable immediately.
        log.log_decision("t3", 0, CommitDecision.COMMIT, 0.4, forced=False, presumed=True)
        # Ack-tracked decision: retained until the last ack lands.
        log.log_decision(
            "t4", 0, CommitDecision.ABORT, 0.5, await_acks_from=(1, 2)
        )
        log.log_begin("t5", 0, (0, 1), 0.6)

        assert log.truncate() == 2  # resolved prepare + presumed decision
        assert log.prepared_record("t2", 0) is blocked
        assert log.decision_for("t1", 0) is CommitDecision.COMMIT
        assert log.decision_for("t4", 0) is CommitDecision.ABORT
        assert log.undecided_begin_records()[0].transaction == "t5"

        log.record_ack("t4", 0, 1)
        assert log.truncate() == 0  # one ack still outstanding
        log.record_ack("t4", 0, 2)
        log.record_ack("t4", 0, 2)  # duplicate acks are harmless
        assert log.truncate() == 1
        assert log.decision_for("t4", 0) is None
        # The presumed-nothing decision survives every checkpoint.
        assert log.decision_for("t1", 0) is CommitDecision.COMMIT
        assert log.records_truncated == 3

    def test_double_prepare_is_rejected(self):
        log = SiteCommitLog(site=0)
        record = PreparedRecord(
            transaction="t1",
            attempt=0,
            coordinator="issuer-1",
            requests=(),
            writes={},
            prepared_at=0.1,
        )
        log.log_prepared(record)
        with pytest.raises(SimulationError):
            log.log_prepared(record)
