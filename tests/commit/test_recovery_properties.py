"""Property tests for coordinator recovery and the termination protocol.

Two safety properties under randomly drawn crash timelines:

* **decision uniqueness** — however a commit round is resolved (coordinator
  decision, recovery walk, presumption, or a peer's termination answer),
  every durable record of one ``(transaction, attempt)`` round names the
  same outcome, and the run stays atomic and serializable;
* **recovery-walk idempotence** — re-running the coordinator recovery walk
  and the participant site-recovery hook after the run has drained is a
  no-op: durable state and the event queue are untouched.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import (
    CommitConfig,
    CoordinatorCrash,
    FaultConfig,
    SiteCrash,
    SystemConfig,
    WorkloadConfig,
)
from repro.system.database import DistributedDatabase
from repro.workload.generator import TransactionGenerator

NUM_SITES = 4


@st.composite
def crash_timelines(draw):
    """A commit variant plus randomly timed site and coordinator crashes."""
    commit = CommitConfig(
        protocol=draw(
            st.sampled_from(["two-phase", "presumed-abort", "presumed-commit"])
        ),
        prepare_timeout=0.5,
        termination_protocol=draw(st.booleans()),
        termination_timeout=0.6,
        checkpoint_interval=draw(st.sampled_from([None, 0.5])),
    )
    crashes = ()
    if draw(st.booleans()):
        crashes = (
            SiteCrash(
                site=draw(st.integers(min_value=0, max_value=NUM_SITES - 1)),
                at=draw(st.sampled_from([0.3, 0.6, 0.9])),
                duration=draw(st.sampled_from([0.3, 0.6, 1.0])),
            ),
        )
    coordinator_crashes = (
        CoordinatorCrash(
            site=draw(st.integers(min_value=0, max_value=NUM_SITES - 1)),
            at=draw(st.sampled_from([0.4, 0.8, 1.2])),
            duration=draw(st.sampled_from([0.6, 1.5, 3.0])),
        ),
    )
    system = SystemConfig(
        num_sites=NUM_SITES,
        num_items=32,
        replication_factor=2,
        restart_delay=0.02,
        seed=draw(st.integers(min_value=0, max_value=50)),
        commit=commit,
        faults=FaultConfig(
            crashes=crashes,
            coordinator_crashes=coordinator_crashes,
            request_timeout=1.5,
        ),
    )
    workload = WorkloadConfig(
        arrival_rate=30.0,
        num_transactions=draw(st.integers(min_value=10, max_value=35)),
        read_fraction=0.6,
        seed=draw(st.integers(min_value=0, max_value=50)),
    )
    return system, workload


def _run_database(system, workload):
    database = DistributedDatabase(system)
    generator = TransactionGenerator(system, workload)
    database.load_workload(generator.generate(), workload)
    result = database.run()
    return database, result


class TestRecoveryProperties:
    @given(crash_timelines())
    @settings(max_examples=12, deadline=None)
    def test_every_round_gets_exactly_one_decision(self, configuration):
        system, workload = configuration
        database, result = _run_database(system, workload)

        assert result.committed == result.submitted
        assert result.atomic
        assert result.serializable

        # Collect every durable statement about a round's outcome: the
        # participants' resolved prepared records and the coordinators'
        # decision records, across all sites.
        outcomes = {}
        for site in range(NUM_SITES):
            log = database.commit_log(site)
            for key, record in log._prepared.items():
                if record.decision is not None:
                    outcomes.setdefault(key, set()).add(record.decision)
            for key, record in log._decisions.items():
                outcomes.setdefault(key, set()).add(record.decision)
        for key, decisions in outcomes.items():
            assert len(decisions) == 1, f"round {key} decided both ways: {decisions}"

    @given(crash_timelines())
    @settings(max_examples=10, deadline=None)
    def test_recovery_walk_is_idempotent_after_the_run(self, configuration):
        system, workload = configuration
        database, result = _run_database(system, workload)
        assert result.atomic

        simulator = database.simulator
        now = simulator.now
        values_before = database.value_store.snapshot()
        records_before = tuple(
            database.commit_log(site).record_count() for site in range(NUM_SITES)
        )
        committed_before = tuple(
            database.issuer(site).committed_attempts() for site in range(NUM_SITES)
        )
        assert simulator.pending_events == 0

        # A spurious second recovery pass (coordinator walk and participant
        # site-event hook at every site) must find nothing left to re-drive.
        for site in range(NUM_SITES):
            database.issuer(site).on_coordinator_recovery(site, now)
            database.participant(site).on_site_event(site, now)

        assert database.value_store.snapshot() == values_before
        assert (
            tuple(database.commit_log(site).record_count() for site in range(NUM_SITES))
            == records_before
        )
        assert (
            tuple(database.issuer(site).committed_attempts() for site in range(NUM_SITES))
            == committed_before
        )
        assert simulator.pending_events == 0
