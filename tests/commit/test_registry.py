"""The commit-protocol registry and the commit/fault configuration."""

import pytest

from repro.commit import (
    OnePhaseCommit,
    TwoPhaseCommit,
    commit_protocol_names,
    create_commit_protocol,
    register_commit_protocol,
)
from repro.commit.base import CommitProtocol
from repro.common.config import (
    CommitConfig,
    DelaySpike,
    FaultConfig,
    SiteCrash,
    SystemConfig,
)
from repro.common.errors import ConfigurationError


class TestRegistry:
    def test_builtin_protocols_registered(self):
        names = commit_protocol_names()
        assert "one-phase" in names
        assert "two-phase" in names

    def test_create_returns_the_right_class(self):
        coordinator = object()
        assert isinstance(create_commit_protocol("one-phase", coordinator), OnePhaseCommit)
        assert isinstance(create_commit_protocol("two-phase", coordinator), TwoPhaseCommit)

    def test_unknown_protocol_rejected_with_known_names(self):
        with pytest.raises(ConfigurationError, match="two-phase"):
            create_commit_protocol("three-phase", object())

    def test_duplicate_registration_rejected(self):
        class Duplicate(CommitProtocol):
            name = "one-phase"

            def begin_commit(self, execution):
                """Unused."""

        with pytest.raises(ConfigurationError):
            register_commit_protocol(Duplicate)

    def test_nameless_registration_rejected(self):
        class Nameless(CommitProtocol):
            def begin_commit(self, execution):
                """Unused."""

        with pytest.raises(ConfigurationError):
            register_commit_protocol(Nameless)


class TestCommitConfig:
    def test_default_is_one_phase(self):
        assert CommitConfig().protocol == "one-phase"
        assert SystemConfig().commit.protocol == "one-phase"
        assert SystemConfig().faults is None

    def test_unknown_commit_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            CommitConfig(protocol="three-phase")

    def test_non_positive_prepare_timeout_rejected(self):
        with pytest.raises(ConfigurationError):
            CommitConfig(prepare_timeout=0.0)


class TestFaultConfig:
    def test_crash_validation(self):
        with pytest.raises(ConfigurationError):
            SiteCrash(site=-1, at=0.0, duration=1.0)
        with pytest.raises(ConfigurationError):
            SiteCrash(site=0, at=-1.0, duration=1.0)
        with pytest.raises(ConfigurationError):
            SiteCrash(site=0, at=0.0, duration=0.0)

    def test_spike_validation(self):
        with pytest.raises(ConfigurationError):
            DelaySpike(at=0.0, duration=1.0, multiplier=0.5)
        with pytest.raises(ConfigurationError):
            DelaySpike(at=0.0, duration=0.0, multiplier=2.0)

    def test_stochastic_crashes_need_a_horizon(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(crash_rate=0.1)
        FaultConfig(crash_rate=0.1, horizon=5.0)

    def test_request_timeout_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(request_timeout=0.0)

    def test_system_config_rejects_out_of_range_crash_sites(self):
        faults = FaultConfig(crashes=(SiteCrash(site=7, at=1.0, duration=1.0),))
        with pytest.raises(ConfigurationError):
            SystemConfig(num_sites=4, faults=faults)

    def test_system_config_rejects_out_of_range_spike_sites(self):
        faults = FaultConfig(spikes=(DelaySpike(at=1.0, duration=1.0, multiplier=2.0, site=9),))
        with pytest.raises(ConfigurationError):
            SystemConfig(num_sites=4, faults=faults)
