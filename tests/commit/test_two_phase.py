"""Two-phase commit: fault-free equivalence, crash atomicity, recovery."""

import pytest

from repro.commit.audit import check_replica_convergence
from repro.common.config import (
    CommitConfig,
    FaultConfig,
    SiteCrash,
    SystemConfig,
    WorkloadConfig,
)
from repro.common.errors import SimulationError
from repro.common.ids import CopyId, RequestId, TransactionId
from repro.common.operations import OperationType
from repro.common.protocol_names import Protocol
from repro.common.transactions import TransactionSpec, TransactionStatus
from repro.core.queue_manager import QueueManager
from repro.core.requests import Request
from repro.storage.catalog import ReplicaCatalog
from repro.storage.store import ValueStore
from repro.system.coordinator import TransactionExecution
from repro.system.database import DistributedDatabase
from repro.system.runner import run_simulation

BLACKOUT = FaultConfig(
    crashes=(SiteCrash(site=1, at=1.0, duration=1.5),), request_timeout=1.5
)

STORM = FaultConfig(
    crashes=(SiteCrash(site=0, at=0.9, duration=0.5),),
    crash_rate=0.25,
    mean_repair_time=0.4,
    horizon=10.0,
    request_timeout=1.5,
)


def _system(commit="two-phase", faults=None, **overrides):
    return SystemConfig(
        num_sites=4,
        num_items=48,
        replication_factor=2,
        restart_delay=0.02,
        seed=11,
        commit=CommitConfig(protocol=commit, prepare_timeout=0.5),
        faults=faults,
        **overrides,
    )


def _workload(**overrides):
    defaults = dict(arrival_rate=30.0, num_transactions=120, seed=13)
    defaults.update(overrides)
    return WorkloadConfig(**defaults)


class TestFaultFreeTwoPhase:
    def test_everything_commits_atomically(self):
        result = run_simulation(_system(), _workload())
        assert result.committed == result.submitted
        assert result.serializable
        assert result.atomic
        assert result.commit_protocol == "two-phase"
        assert result.lost_writes == 0
        assert result.commit_aborts == 0

    def test_commit_rounds_pay_messages_and_latency(self):
        result = run_simulation(_system(), _workload())
        kinds = result.messages_by_kind
        assert kinds["prepare"] == kinds["decide"]
        assert kinds["vote"] == kinds["prepare"]
        assert result.metrics.mean_commit_latency > 0.0
        assert result.metrics.in_doubt_resolutions > 0
        # No site ever went down, so nothing was ever queried after recovery.
        assert "status_query" not in kinds

    def test_one_phase_sends_no_commit_traffic(self):
        result = run_simulation(_system(commit="one-phase"), _workload())
        kinds = result.messages_by_kind
        assert "prepare" not in kinds
        assert "vote" not in kinds
        assert result.metrics.mean_commit_latency == 0.0


class TestCrashAtomicity:
    def test_two_phase_rides_out_a_blackout(self):
        result = run_simulation(_system(faults=BLACKOUT), _workload(num_transactions=150))
        assert result.crashes == 1
        assert result.messages_dropped > 0
        assert result.committed == result.submitted
        assert result.serializable
        assert result.atomic
        assert result.lost_writes == 0

    def test_one_phase_loses_atomicity_in_the_same_blackout(self):
        result = run_simulation(
            _system(commit="one-phase", faults=BLACKOUT), _workload(num_transactions=150)
        )
        assert result.crashes == 1
        violated = (
            result.lost_writes > 0
            or result.replica_report.divergent_items
            or not result.serializable
        )
        assert violated
        assert not result.atomic

    def test_two_phase_aborts_rounds_instead_of_losing_writes(self):
        result = run_simulation(_system(faults=BLACKOUT), _workload(num_transactions=150))
        # Some prepare rounds must have timed out against the dead site ...
        assert result.commit_aborts > 0
        # ... and every aborted round retried to a clean commit.
        assert result.committed == result.submitted
        assert result.metrics.timeout_restarts > 0

    def test_two_phase_survives_a_crash_storm_with_recovery_queries(self):
        result = run_simulation(_system(faults=STORM), _workload(num_transactions=150))
        assert result.crashes > 1
        assert result.serializable
        assert result.atomic
        # In-doubt participants resolved via the recovery status round.
        assert result.messages_by_kind.get("status_query", 0) > 0
        assert result.messages_by_kind.get("status_reply", 0) > 0

    def test_fault_runs_are_deterministic(self):
        first = run_simulation(_system(faults=STORM), _workload())
        second = run_simulation(_system(faults=STORM), _workload())
        assert first.summary() == second.summary()


class TestDecisionLogging:
    def test_every_committed_transaction_has_a_logged_decision(self):
        system = _system()
        workload = _workload(num_transactions=60)
        database = DistributedDatabase(system)
        from repro.workload.generator import TransactionGenerator

        generator = TransactionGenerator(system, workload)
        database.load_workload(generator.generate(), workload)
        result = database.run()
        assert result.committed == result.submitted
        decisions = sum(
            database.commit_log(site).decision_count()
            for site in range(system.num_sites)
        )
        # At least one decision per transaction (abort rounds add more).
        assert decisions >= result.committed
        for site in range(system.num_sites):
            assert not database.commit_log(site).in_doubt_records()


class TestStateMachine:
    def test_illegal_transition_rejected(self):
        system = _system(commit="one-phase")
        database = DistributedDatabase(system)
        issuer = database.issuer(0)
        spec = TransactionSpec(
            tid=TransactionId(0, 1), read_items=(1,), write_items=(), arrival_time=0.0
        )
        execution = TransactionExecution(
            spec=spec, protocol=Protocol.TWO_PHASE_LOCKING, timestamp=1.0
        )
        assert execution.status is TransactionStatus.PENDING
        with pytest.raises(SimulationError):
            issuer.transition(execution, TransactionStatus.COMMITTED)
        issuer.transition(execution, TransactionStatus.REQUESTING)
        assert execution.status is TransactionStatus.REQUESTING
        with pytest.raises(SimulationError):
            issuer.transition(execution, TransactionStatus.PREPARING)

    def test_same_state_transition_is_a_no_op(self):
        system = _system(commit="one-phase")
        database = DistributedDatabase(system)
        issuer = database.issuer(0)
        spec = TransactionSpec(
            tid=TransactionId(0, 2), read_items=(1,), write_items=(), arrival_time=0.0
        )
        execution = TransactionExecution(
            spec=spec, protocol=Protocol.TWO_PHASE_LOCKING, timestamp=1.0
        )
        issuer.transition(execution, TransactionStatus.PENDING)
        assert execution.status is TransactionStatus.PENDING


class TestSemiLockRuleUnderTwoPhase:
    """Releasing a committed 2PC attempt must honour Section 4.2 rule 4."""

    COPY = CopyId(0, 0)

    def _to_request(self, seq, op_type, timestamp):
        tid = TransactionId(0, seq)
        return Request(
            request_id=RequestId(tid, 0, 0),
            transaction=tid,
            protocol=Protocol.TIMESTAMP_ORDERING,
            op_type=op_type,
            copy=self.COPY,
            timestamp=timestamp,
            backoff_interval=1.0,
            issuer="ri-0",
        )

    def test_pre_scheduled_lock_survives_commit_release_as_semi_lock(self):
        manager = QueueManager(self.COPY)
        # t1: T/O read, granted SRL, still executing (unreleased).
        reader = self._to_request(1, OperationType.READ, timestamp=1.0)
        manager.submit(reader, now=0.0)
        # t2: T/O write, granted WL *pre-scheduled* over t1's SRL.
        writer = self._to_request(2, OperationType.WRITE, timestamp=2.0)
        manager.submit(writer, now=0.1)
        manager.drain_effects()
        assert manager.holds_granted_lock(writer.request_id)

        # t2 commits via 2PC: the participant's release must not drop the
        # pre-scheduled lock outright ...
        manager.release_prepared(writer.transaction, now=0.2, attempt=0)
        assert manager.holds_granted_lock(writer.request_id)

        # ... so a 2PL read arriving now stays queued behind the semi-write
        # lock instead of slipping in front of t1 (the inversion of
        # examples/semilock_necessity.py).
        t3 = TransactionId(0, 3)
        straggler = Request(
            request_id=RequestId(t3, 0, 0),
            transaction=t3,
            protocol=Protocol.TWO_PHASE_LOCKING,
            op_type=OperationType.READ,
            copy=self.COPY,
            timestamp=0.0,
            backoff_interval=1.0,
            issuer="ri-0",
        )
        manager.submit(straggler, now=0.3)
        assert not any(
            getattr(effect, "request", None) is straggler
            for effect in manager.drain_effects()
        )

        # Once t1 releases, t2's semi-lock turns normal and auto-releases,
        # unblocking the straggler — with t2's write implemented before it.
        manager.release(reader.transaction, now=0.4)
        assert not manager.holds_granted_lock(writer.request_id)
        assert any(
            getattr(effect, "request", None) is straggler
            for effect in manager.drain_effects()
        )
        operations = [
            (entry.transaction.seq, entry.op_type.is_write)
            for log in manager.execution_log.logs()
            for entry in log.entries()
        ]
        assert operations.index((2, True)) < operations.index((3, False))

    def test_contended_to_heavy_two_phase_run_stays_serializable(self):
        mix_system = _system().with_overrides(num_items=16)
        workload = _workload(
            num_transactions=150, arrival_rate=40.0, read_fraction=0.4
        )
        result = run_simulation(mix_system, workload, protocol="T/O")
        assert result.committed == result.submitted
        assert result.serializable
        assert result.atomic


class TestReplicaAudit:
    def test_divergent_final_values_detected(self):
        catalog = ReplicaCatalog(num_sites=2, num_items=2, replication_factor=2)
        store = ValueStore()
        writer = TransactionId(0, 1)
        store.write(CopyId(0, 0), "a", writer, 1.0)
        store.write(CopyId(0, 1), "b", writer, 1.0)
        report = check_replica_convergence(store, catalog)
        assert report.divergent_items == (0,)
        assert not report.convergent

    def test_masked_half_applied_write_all_detected_by_write_counts(self):
        catalog = ReplicaCatalog(num_sites=2, num_items=1, replication_factor=2)
        store = ValueStore()
        first, second = TransactionId(0, 1), TransactionId(0, 2)
        # First write-all only reaches copy 0; the second reaches both and
        # makes the final values agree again.
        store.write(CopyId(0, 0), "lost", first, 1.0)
        store.write(CopyId(0, 0), "same", second, 2.0)
        store.write(CopyId(0, 1), "same", second, 2.0)
        report = check_replica_convergence(store, catalog)
        assert report.divergent_items == (0,)

    def test_converged_copies_pass(self):
        catalog = ReplicaCatalog(num_sites=2, num_items=1, replication_factor=2)
        store = ValueStore()
        writer = TransactionId(0, 1)
        store.write(CopyId(0, 0), "v", writer, 1.0)
        store.write(CopyId(0, 1), "v", writer, 1.0)
        report = check_replica_convergence(store, catalog)
        assert report.convergent
        assert report.checked_items == 1
